package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"speedctx/internal/core"
	"speedctx/internal/dataset"
	"speedctx/internal/tilequery"
)

// Server is the ingest HTTP surface. Each accepted submission is
// classified synchronously against its city's fitted BST model (the ack
// carries tier, upload tier and confidence) and then handed to the
// write-behind Pipeline.
//
// Endpoints:
//
//	POST /v1/ingest        one submission object; ack is one JSON object
//	POST /v1/ingest/batch  NDJSON, one submission per line; ack is NDJSON
//	                       of per-line results in input order
//	POST /v1/classify      classify one submission WITHOUT ingesting it —
//	                       a read-only probe of the serving model
//	GET  /v1/tiles         contextualized per-quadkey aggregates over every
//	                       sealed row (DESIGN.md §13): ?zoom=&bbox=&metric=
//	                       &format=, folded incrementally from segments via
//	                       pruned column scans and served through a
//	                       per-(tile, version) result cache
//	GET  /healthz          liveness
//	GET  /statsz           accepted/rejected/sealed counters plus per-city
//	                       model generation and staleness as JSON
//
// The batch endpoint exists for throughput: it runs the exact same
// parse → classify → Submit path per line, but amortizes the HTTP and
// syscall overhead that dominates single-POST ingest on small machines.
//
// Live refresh (DESIGN.md §12): when a city model carries its base tier
// sketches and a refresh trigger is configured, a background loop watches
// the pipeline's sealed-sketch counters and refits that city's BST from
// base + sealed-segment sketches (core.FitFromSketches), then publishes the
// new classifier with an atomic pointer swap — RCU-style: requests in
// flight finish against the model they loaded, new requests observe the new
// one, and no request ever blocks on a refit.
type Server struct {
	pipe   *Pipeline
	cfg    ServerConfig
	cities map[string]*cityState
	tiles  *tileServer

	accepted atomic.Uint64
	rejected atomic.Uint64

	bufPool sync.Pool // *[]byte request/response scratch

	// refitMu serializes refresh sweeps: the startup fold, the loop's
	// ticks, and any test-driven forced sweep must not interleave their
	// read-folded/refit/publish sequences on one city.
	refitMu sync.Mutex

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// CityModel is one city's serving state at startup: the fitted classifier,
// plus (optionally) the tier sketches of the rows that classifier was fit
// from. A nil Base disables live refresh for the city — the classifier then
// serves frozen, exactly as before sketch refresh existed.
type CityModel struct {
	Classifier *core.Classifier
	Base       *core.TierSketches
}

// StaticModels wraps bare classifiers as refresh-less city models — the
// PR 6 serving behavior, used by callers that don't accumulate sketches.
func StaticModels(classifiers map[string]*core.Classifier) map[string]*CityModel {
	out := make(map[string]*CityModel, len(classifiers))
	for city, cl := range classifiers {
		out[city] = &CityModel{Classifier: cl}
	}
	return out
}

// ServerConfig tunes the refresh loop. The zero value disables refresh
// entirely (frozen startup models).
type ServerConfig struct {
	// RefitRows triggers a city's refit once at least this many sealed
	// rows are not yet folded into its serving model. 0 disables the
	// row trigger.
	RefitRows int
	// RefitAge triggers a refit once the serving model is at least this
	// old AND at least one unfolded sealed row exists. 0 disables the
	// age trigger.
	RefitAge time.Duration
	// Poll is the refresh loop's check interval. Default 250ms; the
	// check is two mutex-guarded map reads per tick, refits only run
	// when a trigger fires.
	Poll time.Duration
	// FitConfig is the BST configuration refits run under. Use the same
	// config the startup models were fit with, so refreshed and cold-start
	// models are directly comparable.
	FitConfig core.Config
	// Logf, when non-nil, receives one line per refit and per refit
	// failure.
	Logf func(format string, args ...any)
	// Tiles configures the /v1/tiles aggregation layer. The zero value
	// serves zoom-16 tiles with the default location seed and all-CPU
	// folds; Parallelism and LocSeed never change response bytes.
	Tiles tilequery.Config
	// TileCacheTiles bounds the tile result cache (0 = the tilequery
	// default).
	TileCacheTiles int
}

func (c *ServerConfig) defaults() {
	if c.Poll <= 0 {
		c.Poll = 250 * time.Millisecond
	}
}

// enabled reports whether any refresh trigger is configured.
func (c *ServerConfig) enabled() bool { return c.RefitRows > 0 || c.RefitAge > 0 }

func (c *ServerConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// cityState is one city's live serving state. The classifier pointer is the
// RCU-published value; everything else is refresh bookkeeping.
type cityState struct {
	cl   atomic.Pointer[core.Classifier]
	base *core.TierSketches

	generation atomic.Uint64 // refits published (startup model = 0)
	folded     atomic.Uint64 // sealed rows folded into the serving model
	refitNanos atomic.Int64  // wall clock of the last publish
}

// NewServer wires the per-city models in front of a pipeline. The model
// map's keys are the city IDs submissions name in their "city" field; a
// submission for an absent city is rejected, not guessed.
//
// When refresh is enabled, cities whose pipeline already holds sealed
// sketches (primed from the segment directory) are refit synchronously
// before the server is returned — a restarted server immediately serves
// the models its sealed history implies, which is what makes a cold
// restart indistinguishable from an uninterrupted run's live refreshes.
func NewServer(pipe *Pipeline, models map[string]*CityModel, cfg ServerConfig) *Server {
	cfg.defaults()
	s := &Server{
		pipe:   pipe,
		cfg:    cfg,
		cities: make(map[string]*cityState, len(models)),
		bufPool: sync.Pool{New: func() any {
			b := make([]byte, 0, 4096)
			return &b
		}},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	modelCities := make([]string, 0, len(models))
	for city := range models {
		modelCities = append(modelCities, city)
	}
	sort.Strings(modelCities)
	s.tiles = newTileServer(pipe.cfg.Dir, cfg.Tiles, cfg.TileCacheTiles, pipe.cfg.ScanBatchRows, modelCities)
	now := time.Now().UnixNano()
	for city, m := range models {
		st := &cityState{base: m.Base}
		st.cl.Store(m.Classifier)
		st.refitNanos.Store(now)
		s.cities[city] = st
	}
	if cfg.enabled() {
		s.refreshOnce(true)
		go s.refreshLoop()
	} else {
		close(s.done)
	}
	return s
}

// Close stops the refresh loop. It never touches the pipeline — the caller
// owns pipeline shutdown ordering.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

func (s *Server) refreshLoop() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.Poll)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.refreshOnce(false)
		}
	}
}

// refreshOnce refits every refresh-eligible city whose trigger fired (or
// every city with unfolded sealed rows, when force is set — the startup
// fold). Refits run serially: a refit is milliseconds of histogram EM, and
// serializing keeps the loop's memory peak at one merged sketch set.
func (s *Server) refreshOnce(force bool) {
	s.refitMu.Lock()
	defer s.refitMu.Unlock()
	counts := s.pipe.SketchCounts()
	if len(counts) == 0 {
		return
	}
	for city, st := range s.cities {
		if st.base == nil {
			continue
		}
		sealed, ok := counts[city]
		if !ok || uint64(sealed) <= st.folded.Load() {
			continue
		}
		pendingRows := uint64(sealed) - st.folded.Load()
		trigger := force
		if !trigger && s.cfg.RefitRows > 0 && pendingRows >= uint64(s.cfg.RefitRows) {
			trigger = true
		}
		if !trigger && s.cfg.RefitAge > 0 &&
			time.Since(time.Unix(0, st.refitNanos.Load())) >= s.cfg.RefitAge {
			trigger = true
		}
		if !trigger {
			continue
		}
		s.refitCity(city, st)
	}
}

// refitCity merges base + sealed-segment sketches, refits the BST, and
// atomically publishes the new classifier.
func (s *Server) refitCity(city string, st *cityState) {
	sealedSk, ok := s.pipe.SealedSketchesFor(city)
	if !ok {
		return
	}
	merged := st.base.Clone()
	if err := merged.Merge(sealedSk); err != nil {
		s.cfg.logf("ingest: refit %s: merge sketches: %v", city, err)
		return
	}
	cat := st.cl.Load().Result().Catalog
	res, err := core.FitFromSketches(merged, cat, s.cfg.FitConfig)
	if err != nil {
		s.cfg.logf("ingest: refit %s: %v", city, err)
		return
	}
	st.cl.Store(core.NewClassifier(res, s.cfg.FitConfig))
	st.folded.Store(uint64(sealedSk.Count()))
	gen := st.generation.Add(1)
	st.refitNanos.Store(time.Now().UnixNano())
	s.cfg.logf("ingest: refit %s: generation %d over %d sealed rows", city, gen, sealedSk.Count())
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", s.handleOne)
	mux.HandleFunc("/v1/ingest/batch", s.handleBatch)
	mux.HandleFunc("/v1/classify", s.handleClassify)
	mux.HandleFunc("/v1/tiles", s.handleTiles)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/statsz", s.handleStats)
	return mux
}

// maxBodyBytes bounds a request body; large enough for a ~64k-row batch.
const maxBodyBytes = 32 << 20

// readBody slurps the request body into pooled scratch. The returned
// release func must be called after the bytes are no longer referenced.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, func(), error) {
	bp := s.bufPool.Get().(*[]byte)
	buf := bytes.NewBuffer((*bp)[:0])
	_, err := io.Copy(buf, io.LimitReader(r.Body, maxBodyBytes+1))
	release := func() {
		b := buf.Bytes()
		*bp = b[:0]
		s.bufPool.Put(bp)
	}
	if err != nil {
		release()
		return nil, nil, err
	}
	if buf.Len() > maxBodyBytes {
		release()
		return nil, nil, errors.New("ingest: request body too large")
	}
	return buf.Bytes(), release, nil
}

// classify validates one parsed row against its city's serving model and
// stamps the assignment fields. It is the single accept/reject decision
// point for both ingest endpoints and the probe. The classifier is loaded
// once per row; a concurrent refresh swap simply means the next row sees
// the newer model.
func (s *Server) classify(row *dataset.IngestRow) error {
	st, ok := s.cities[row.City]
	if !ok {
		return fmt.Errorf("ingest: unknown city %q", row.City)
	}
	a := st.cl.Load().ClassifyOne(row.DownloadMbps, row.UploadMbps)
	row.UploadTier = a.UploadTier
	row.Tier = a.Tier
	row.Confidence = a.Confidence
	return nil
}

func (s *Server) handleOne(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, release, err := s.readBody(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer release()
	var row dataset.IngestRow
	if err := parseSubmission(body, &row); err != nil {
		s.rejected.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.classify(&row); err != nil {
		s.rejected.Add(1)
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if err := s.pipe.Submit(row); err != nil {
		s.rejected.Add(1)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.accepted.Add(1)
	s.writeAck(w, row)
}

// handleClassify is the read-only probe: parse and classify exactly like
// /v1/ingest, but never submit the row, so probing a model does not feed
// the very sketches the model refreshes from.
func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, release, err := s.readBody(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer release()
	var row dataset.IngestRow
	if err := parseSubmission(body, &row); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.classify(&row); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	s.writeAck(w, row)
}

// writeAck renders one classified row's ack object through the buffer pool.
func (s *Server) writeAck(w http.ResponseWriter, row dataset.IngestRow) {
	ack := s.bufPool.Get().(*[]byte)
	out := appendAck((*ack)[:0], core.Assignment{
		UploadTier: row.UploadTier, Tier: row.Tier, Confidence: row.Confidence,
	})
	out = append(out, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
	*ack = out[:0]
	s.bufPool.Put(ack)
}

// handleBatch ingests NDJSON. Every line gets a same-position NDJSON
// response line — an ack for accepted rows, {"error":...} for rejected
// ones — so a client can pair results without ids. A full queue still
// blocks (backpressure through the batch too); only a closed pipeline
// fails the request.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, release, err := s.readBody(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer release()
	ack := s.bufPool.Get().(*[]byte)
	out := (*ack)[:0]
	for len(body) > 0 {
		line := body
		if nl := bytes.IndexByte(body, '\n'); nl >= 0 {
			line, body = body[:nl], body[nl+1:]
		} else {
			body = nil
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var row dataset.IngestRow
		err := parseSubmission(line, &row)
		if err == nil {
			err = s.classify(&row)
		}
		if err == nil {
			err = s.pipe.Submit(row)
			if err != nil {
				// Closed pipeline: nothing later can be accepted either.
				s.rejected.Add(1)
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				*ack = out[:0]
				s.bufPool.Put(ack)
				return
			}
		}
		if err != nil {
			s.rejected.Add(1)
			out = appendError(out, err)
		} else {
			s.accepted.Add(1)
			out = appendAck(out, core.Assignment{
				UploadTier: row.UploadTier, Tier: row.Tier, Confidence: row.Confidence,
			})
		}
		out = append(out, '\n')
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(out)
	*ack = out[:0]
	s.bufPool.Put(ack)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	queued, sealedRows, segments := s.pipe.Stats()
	counts := s.pipe.SketchCounts()
	now := time.Now()
	var out []byte
	out = append(out, `{"accepted":`...)
	out = strconv.AppendUint(out, s.accepted.Load(), 10)
	out = append(out, `,"rejected":`...)
	out = strconv.AppendUint(out, s.rejected.Load(), 10)
	out = append(out, `,"queued":`...)
	out = strconv.AppendUint(out, queued, 10)
	out = append(out, `,"sealed_rows":`...)
	out = strconv.AppendUint(out, sealedRows, 10)
	out = append(out, `,"segments":`...)
	out = strconv.AppendUint(out, segments, 10)
	out = append(out, ',')
	out = appendTileStats(out, s.tiles.stats())
	out = append(out, `,"models":{`...)
	cities := make([]string, 0, len(s.cities))
	for city := range s.cities {
		cities = append(cities, city)
	}
	sort.Strings(cities)
	for i, city := range cities {
		st := s.cities[city]
		if i > 0 {
			out = append(out, ',')
		}
		out = strconv.AppendQuote(out, city)
		out = append(out, `:{"generation":`...)
		out = strconv.AppendUint(out, st.generation.Load(), 10)
		out = append(out, `,"rows_since_refit":`...)
		pending := uint64(0)
		if sealed := uint64(counts[city]); sealed > st.folded.Load() {
			pending = sealed - st.folded.Load()
		}
		out = strconv.AppendUint(out, pending, 10)
		out = append(out, `,"seconds_since_refit":`...)
		out = strconv.AppendFloat(out, now.Sub(time.Unix(0, st.refitNanos.Load())).Seconds(), 'f', 3, 64)
		out = append(out, '}')
	}
	out = append(out, '}', '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

// Counts reports the server's accept/reject totals.
func (s *Server) Counts() (accepted, rejected uint64) {
	return s.accepted.Load(), s.rejected.Load()
}

// Generation reports how many refits city has published (0 = startup
// model), with ok=false for an unknown city.
func (s *Server) Generation(city string) (gen uint64, ok bool) {
	st, ok := s.cities[city]
	if !ok {
		return 0, false
	}
	return st.generation.Load(), true
}
