package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"speedctx/internal/core"
	"speedctx/internal/dataset"
)

// Server is the ingest HTTP surface. Each accepted submission is
// classified synchronously against its city's fitted BST model (the ack
// carries tier, upload tier and confidence) and then handed to the
// write-behind Pipeline.
//
// Endpoints:
//
//	POST /v1/ingest        one submission object; ack is one JSON object
//	POST /v1/ingest/batch  NDJSON, one submission per line; ack is NDJSON
//	                       of per-line results in input order
//	GET  /healthz          liveness
//	GET  /statsz           accepted/rejected/sealed counters as JSON
//
// The batch endpoint exists for throughput: it runs the exact same
// parse → classify → Submit path per line, but amortizes the HTTP and
// syscall overhead that dominates single-POST ingest on small machines.
type Server struct {
	pipe        *Pipeline
	classifiers map[string]*core.Classifier

	accepted atomic.Uint64
	rejected atomic.Uint64

	bufPool sync.Pool // *[]byte request/response scratch
}

// NewServer wires the per-city classifiers in front of a pipeline. The
// classifier map's keys are the city IDs submissions name in their "city"
// field; a submission for an absent city is rejected, not guessed.
func NewServer(pipe *Pipeline, classifiers map[string]*core.Classifier) *Server {
	return &Server{
		pipe:        pipe,
		classifiers: classifiers,
		bufPool: sync.Pool{New: func() any {
			b := make([]byte, 0, 4096)
			return &b
		}},
	}
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", s.handleOne)
	mux.HandleFunc("/v1/ingest/batch", s.handleBatch)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/statsz", s.handleStats)
	return mux
}

// maxBodyBytes bounds a request body; large enough for a ~64k-row batch.
const maxBodyBytes = 32 << 20

// readBody slurps the request body into pooled scratch. The returned
// release func must be called after the bytes are no longer referenced.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, func(), error) {
	bp := s.bufPool.Get().(*[]byte)
	buf := bytes.NewBuffer((*bp)[:0])
	_, err := io.Copy(buf, io.LimitReader(r.Body, maxBodyBytes+1))
	release := func() {
		b := buf.Bytes()
		*bp = b[:0]
		s.bufPool.Put(bp)
	}
	if err != nil {
		release()
		return nil, nil, err
	}
	if buf.Len() > maxBodyBytes {
		release()
		return nil, nil, errors.New("ingest: request body too large")
	}
	return buf.Bytes(), release, nil
}

// classify validates one parsed row against its city model and stamps the
// assignment fields. It is the single accept/reject decision point for
// both endpoints.
func (s *Server) classify(row *dataset.IngestRow) error {
	cl, ok := s.classifiers[row.City]
	if !ok {
		return fmt.Errorf("ingest: unknown city %q", row.City)
	}
	a := cl.ClassifyOne(row.DownloadMbps, row.UploadMbps)
	row.UploadTier = a.UploadTier
	row.Tier = a.Tier
	row.Confidence = a.Confidence
	return nil
}

func (s *Server) handleOne(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, release, err := s.readBody(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer release()
	var row dataset.IngestRow
	if err := parseSubmission(body, &row); err != nil {
		s.rejected.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.classify(&row); err != nil {
		s.rejected.Add(1)
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if err := s.pipe.Submit(row); err != nil {
		s.rejected.Add(1)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.accepted.Add(1)
	ack := s.bufPool.Get().(*[]byte)
	out := appendAck((*ack)[:0], core.Assignment{
		UploadTier: row.UploadTier, Tier: row.Tier, Confidence: row.Confidence,
	})
	out = append(out, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
	*ack = out[:0]
	s.bufPool.Put(ack)
}

// handleBatch ingests NDJSON. Every line gets a same-position NDJSON
// response line — an ack for accepted rows, {"error":...} for rejected
// ones — so a client can pair results without ids. A full queue still
// blocks (backpressure through the batch too); only a closed pipeline
// fails the request.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, release, err := s.readBody(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer release()
	ack := s.bufPool.Get().(*[]byte)
	out := (*ack)[:0]
	for len(body) > 0 {
		line := body
		if nl := bytes.IndexByte(body, '\n'); nl >= 0 {
			line, body = body[:nl], body[nl+1:]
		} else {
			body = nil
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var row dataset.IngestRow
		err := parseSubmission(line, &row)
		if err == nil {
			err = s.classify(&row)
		}
		if err == nil {
			err = s.pipe.Submit(row)
			if err != nil {
				// Closed pipeline: nothing later can be accepted either.
				s.rejected.Add(1)
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				*ack = out[:0]
				s.bufPool.Put(ack)
				return
			}
		}
		if err != nil {
			s.rejected.Add(1)
			out = appendError(out, err)
		} else {
			s.accepted.Add(1)
			out = appendAck(out, core.Assignment{
				UploadTier: row.UploadTier, Tier: row.Tier, Confidence: row.Confidence,
			})
		}
		out = append(out, '\n')
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(out)
	*ack = out[:0]
	s.bufPool.Put(ack)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	queued, sealedRows, segments := s.pipe.Stats()
	var out []byte
	out = append(out, `{"accepted":`...)
	out = strconv.AppendUint(out, s.accepted.Load(), 10)
	out = append(out, `,"rejected":`...)
	out = strconv.AppendUint(out, s.rejected.Load(), 10)
	out = append(out, `,"queued":`...)
	out = strconv.AppendUint(out, queued, 10)
	out = append(out, `,"sealed_rows":`...)
	out = strconv.AppendUint(out, sealedRows, 10)
	out = append(out, `,"segments":`...)
	out = strconv.AppendUint(out, segments, 10)
	out = append(out, '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

// Counts reports the server's accept/reject totals.
func (s *Server) Counts() (accepted, rejected uint64) {
	return s.accepted.Load(), s.rejected.Load()
}
