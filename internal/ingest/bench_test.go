package ingest

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"
)

// percentile reads the q-quantile (0..1) from a sorted latency slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func reportLatencies(b *testing.B, lat []float64) {
	sort.Float64s(lat)
	b.ReportMetric(percentile(lat, 0.50), "p50-lat-ns")
	b.ReportMetric(percentile(lat, 0.95), "p95-lat-ns")
	b.ReportMetric(percentile(lat, 0.99), "p99-lat-ns")
	b.ReportMetric(percentile(lat, 0.999), "p999-lat-ns")
}

// benchIngestHTTP drives the full server path — HTTP, parse, classify,
// submit — with `batch` rows per request, reporting row throughput and
// request-latency percentiles. batch=1 posts to /v1/ingest; larger batches
// post NDJSON to /v1/ingest/batch.
func benchIngestHTTP(b *testing.B, batch int) {
	cls, rows := loadClassifiers(b)
	ts, _, p := startServer(b, b.TempDir(), PipelineConfig{BatchRows: 1 << 16}, cls)
	defer ts.Close()
	defer p.Close()
	client := ts.Client()

	url := ts.URL + "/v1/ingest"
	if batch > 1 {
		url = ts.URL + "/v1/ingest/batch"
	}
	// Pre-render the request bodies outside the timer.
	bodies := make([][]byte, 0, (len(rows)+batch-1)/batch)
	for at := 0; at < len(rows); at += batch {
		var buf []byte
		for j := at; j < at+batch && j < len(rows); j++ {
			buf = AppendSubmission(buf, &rows[j])
			if batch > 1 {
				buf = append(buf, '\n')
			}
		}
		bodies = append(bodies, buf)
	}

	lat := make([]float64, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		body := bodies[i%len(bodies)]
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		lat = append(lat, float64(time.Since(t0).Nanoseconds()))
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	elapsed := time.Since(start).Seconds()
	b.StopTimer()
	reportLatencies(b, lat)
	b.ReportMetric(float64(b.N*batch)/elapsed, "rows/s")
}

func BenchmarkIngestHTTPSingle(b *testing.B)  { benchIngestHTTP(b, 1) }
func BenchmarkIngestHTTPBatch64(b *testing.B) { benchIngestHTTP(b, 64) }

// BenchmarkIngestPipelineSubmit isolates the post-classification path:
// Submit through the sharded queues into the write-behind batcher.
func BenchmarkIngestPipelineSubmit(b *testing.B) {
	rows := testRows(4096, 9)
	p, err := NewPipeline(PipelineConfig{Dir: b.TempDir(), BatchRows: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Submit(rows[i%len(rows)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerWarmRefresh measures one full warm refresh sweep on a
// live server: read the sealed per-city sketch fold, clone + merge the
// base tier sketches, refit the BST from the merged sketches, and publish
// the new classifier through the RCU pointer swap. The sweep runs with the
// background loop disabled and every sealed row marked unfolded again per
// iteration, so each iteration pays the whole refit the refresh loop pays
// when a trigger fires.
func BenchmarkServerWarmRefresh(b *testing.B) {
	city, models, specs, fitCfg, rows := refreshFixture(b)
	p, err := NewPipeline(PipelineConfig{Dir: b.TempDir(), BatchRows: 25, MaxBatchAge: -1, Sketches: specs})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	srv := NewServer(p, models, ServerConfig{FitConfig: fitCfg})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i := range rows {
		postOne(b, ts.Client(), ts.URL, &rows[i])
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if sk, ok := p.SealedSketchesFor(city); ok && sk.Count() == len(rows) {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("sealed sketches never reached %d rows: %v", len(rows), p.SketchCounts())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := srv.cities[city]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.folded.Store(0) // every sealed row counts as unfolded again
		srv.refreshOnce(true)
	}
	b.StopTimer()
	if gen, _ := srv.Generation(city); gen < uint64(b.N) {
		b.Fatalf("refits published = %d, want >= %d", gen, b.N)
	}
}

// BenchmarkParseSubmission measures the hand-rolled wire decode alone.
func BenchmarkParseSubmission(b *testing.B) {
	rows := testRows(256, 10)
	bodies := make([][]byte, len(rows))
	for i := range rows {
		bodies[i] = AppendSubmission(nil, &rows[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var row = rows[0]
		if err := parseSubmission(bodies[i%len(bodies)], &row); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTilesHTTP measures GET /v1/tiles end to end on a server whose
// segments are all sealed and folded. After the first request the refresh
// sweep sees no new segments and every rolled tile is a result-cache hit,
// so the hot path's latency percentiles are the cache's constant-time
// claim, measured through HTTP.
func BenchmarkTilesHTTP(b *testing.B) {
	cls, rows := loadClassifiers(b)
	ts, _, p := startServer(b, b.TempDir(), PipelineConfig{BatchRows: 128, MaxBatchAge: -1}, cls)
	defer ts.Close()
	client := ts.Client()
	for at := 0; at < len(rows); at += 64 {
		var buf []byte
		for j := at; j < at+64 && j < len(rows); j++ {
			buf = AppendSubmission(buf, &rows[j])
			buf = append(buf, '\n')
		}
		resp, err := client.Post(ts.URL+"/v1/ingest/batch", "application/json", bytes.NewReader(buf))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	if err := p.Close(); err != nil { // seal the tail batch
		b.Fatal(err)
	}
	for _, q := range []struct{ name, params string }{
		{"query=base", ""},
		{"query=rollup", "?zoom=12&metric=download"},
	} {
		b.Run(q.name, func(b *testing.B) {
			if code, body := getTiles(b, client, ts.URL, q.params); code != http.StatusOK || len(body) == 0 {
				b.Fatalf("warmup status %d (%d bytes)", code, len(body))
			}
			lat := make([]float64, 0, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				code, body := getTiles(b, client, ts.URL, q.params)
				lat = append(lat, float64(time.Since(t0).Nanoseconds()))
				if code != http.StatusOK || len(body) == 0 {
					b.Fatalf("status %d", code)
				}
			}
			b.StopTimer()
			reportLatencies(b, lat)
		})
	}
}
