package ingest

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"speedctx/internal/opendata"
	"speedctx/internal/tilequery"
)

func getTiles(t testing.TB, client *http.Client, url, params string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url + "/v1/tiles" + params)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestTilesEndpointIdentity is the serving-path determinism gate: the
// /v1/tiles bytes from a server that watched segments seal one by one
// equal the library-path rendering of the same rows, survive a Compact
// (refold) unchanged, and equal a cold-restarted server's first response.
func TestTilesEndpointIdentity(t *testing.T) {
	cls, rows := loadClassifiers(t)
	dir := t.TempDir()
	ts, srv, p := startServer(t, dir, PipelineConfig{BatchRows: 100, MaxBatchAge: -1}, cls)
	defer ts.Close()
	client := ts.Client()
	for i := range rows {
		postOne(t, client, ts.URL, &rows[i])
	}
	// Mid-run probe: sealing is asynchronous, so only the status is
	// asserted here.
	if code, body := getTiles(t, client, ts.URL, ""); code != http.StatusOK {
		t.Fatalf("mid-run /v1/tiles = %d: %s", code, body)
	}
	if err := p.Close(); err != nil { // seals the tail
		t.Fatal(err)
	}

	code, live := getTiles(t, client, ts.URL, "")
	if code != http.StatusOK {
		t.Fatalf("/v1/tiles = %d: %s", code, live)
	}

	// Library-path expectation over the same submissions, tiers recomputed
	// exactly as the server stamped them.
	exp := &tilequery.Rows{}
	for i := range rows {
		r := &rows[i]
		a := cls[r.City].ClassifyOne(r.DownloadMbps, r.UploadMbps)
		exp.UserID = append(exp.UserID, r.UserID)
		exp.City = append(exp.City, r.City)
		exp.Download = append(exp.Download, r.DownloadMbps)
		exp.Upload = append(exp.Upload, r.UploadMbps)
		exp.Latency = append(exp.Latency, r.LatencyMs)
		exp.Tier = append(exp.Tier, a.Tier)
	}
	tiles, err := tilequery.Aggregate(exp, tilequery.Config{}, tilequery.Query{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := tilequery.AppendTilesJSON(nil, opendata.TileZoom, tiles, "")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(live, want) {
		t.Fatalf("endpoint bytes diverge from library aggregation (%d vs %d bytes)", len(live), len(want))
	}

	// Warm repeat: identical bytes, served from the result cache.
	if _, again := getTiles(t, client, ts.URL, ""); !bytes.Equal(again, live) {
		t.Fatal("warm response differs from cold response")
	}
	if st := srv.tiles.stats(); st.CacheHits == 0 {
		t.Fatalf("warm query hit no cache entries: %+v", st)
	}

	// Compaction rewrites the directory into one segment; the replayed fold
	// must reproduce the same bytes.
	if _, err := Compact(dir); err != nil {
		t.Fatal(err)
	}
	if _, after := getTiles(t, client, ts.URL, ""); !bytes.Equal(after, live) {
		t.Fatal("response changed across Compact")
	}
	if st := srv.tiles.stats(); st.Refolds != 1 || st.Segments != 1 {
		t.Fatalf("expected one refold over one segment: %+v", st)
	}
	if st := srv.tiles.stats(); st.ColsSkipped == 0 || st.ColsDecoded == 0 {
		t.Fatalf("pruned fold decoded no/all columns: %+v", st)
	}

	// A cold server over the same directory answers identically at once.
	ts2, _, p2 := startServer(t, dir, PipelineConfig{}, cls)
	defer ts2.Close()
	defer p2.Close()
	if _, cold := getTiles(t, ts2.Client(), ts2.URL, ""); !bytes.Equal(cold, live) {
		t.Fatal("cold-restart response differs from live-fold response")
	}
}

func TestTilesEndpointQueries(t *testing.T) {
	cls, rows := loadClassifiers(t)
	dir := t.TempDir()
	ts, _, p := startServer(t, dir, PipelineConfig{}, cls)
	defer ts.Close()
	client := ts.Client()
	for i := range rows {
		postOne(t, client, ts.URL, &rows[i])
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// bbox around one fixture city's box selects exactly that city's tiles.
	city := rows[0].City
	c := opendata.CityCenter(city)
	bbox := fmt.Sprintf("?bbox=%g,%g,%g,%g", c.Lat-0.11, c.Lon-0.11, c.Lat+0.11, c.Lon+0.11)
	code, got := getTiles(t, client, ts.URL, bbox)
	if code != http.StatusOK {
		t.Fatalf("bbox query = %d: %s", code, got)
	}
	exp := &tilequery.Rows{}
	for i := range rows {
		r := &rows[i]
		if r.City != city {
			continue
		}
		a := cls[r.City].ClassifyOne(r.DownloadMbps, r.UploadMbps)
		exp.UserID = append(exp.UserID, r.UserID)
		exp.City = append(exp.City, r.City)
		exp.Download = append(exp.Download, r.DownloadMbps)
		exp.Upload = append(exp.Upload, r.UploadMbps)
		exp.Latency = append(exp.Latency, r.LatencyMs)
		exp.Tier = append(exp.Tier, a.Tier)
	}
	tiles, err := tilequery.Aggregate(exp, tilequery.Config{}, tilequery.Query{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := tilequery.AppendTilesJSON(nil, opendata.TileZoom, tiles, "")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(got, want) {
		t.Fatalf("bbox response does not isolate city %s tiles", city)
	}

	// Roll-up zoom plus metric projection.
	code, proj := getTiles(t, client, ts.URL, "?zoom=12&metric=download")
	if code != http.StatusOK || !bytes.Contains(proj, []byte(`"metric":"download"`)) {
		t.Fatalf("metric query = %d: %.120s", code, proj)
	}
	// CSV format carries the full schema header.
	code, csvBody := getTiles(t, client, ts.URL, "?format=csv")
	if code != http.StatusOK || !strings.HasPrefix(string(csvBody), "quadkey,avg_d_kbps,") {
		t.Fatalf("csv query = %d: %.120s", code, csvBody)
	}

	// Parameter validation.
	for _, bad := range []string{"?zoom=0", "?zoom=17", "?zoom=x", "?bbox=1,2,3", "?bbox=9,9,1,1", "?metric=nope"} {
		if code, body := getTiles(t, client, ts.URL, bad); code != http.StatusBadRequest {
			t.Fatalf("%s = %d (%.80s), want 400", bad, code, body)
		}
	}
	resp, err := client.Post(ts.URL+"/v1/tiles", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/tiles = %d, want 405", resp.StatusCode)
	}

	// statsz exposes the tile_cache block.
	resp, err = client.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(stats, []byte(`"tile_cache":{"rows":`)) {
		t.Fatalf("statsz misses tile_cache: %s", stats)
	}
}

// TestTilesPushdownClustered is the serving-path pushdown gate: after a
// clustered compaction, a bbox query through the pushdown scan path skips
// row groups outside the bbox yet renders bytes identical to the engine
// path (?push=0), and /statsz accounts the skips per attributed city.
func TestTilesPushdownClustered(t *testing.T) {
	cls, rows := loadClassifiers(t)
	dir := t.TempDir()
	ts, srv, p := startServer(t, dir, PipelineConfig{}, cls)
	defer ts.Close()
	client := ts.Client()
	for i := range rows {
		postOne(t, client, ts.URL, &rows[i])
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Cluster-compact with tiny zone groups so even the fixture's row count
	// spans many groups; the two fixture cities land in disjoint quadkey
	// runs, so a one-city bbox must skip the other city's groups entirely.
	if _, err := CompactWith(dir, CompactOptions{ClusterZoom: opendata.TileZoom, ZoneBlockRows: 16}); err != nil {
		t.Fatal(err)
	}

	city := rows[0].City
	c := opendata.CityCenter(city)
	bbox := fmt.Sprintf("?bbox=%g,%g,%g,%g", c.Lat-0.11, c.Lon-0.11, c.Lat+0.11, c.Lon+0.11)
	code, pushed := getTiles(t, client, ts.URL, bbox)
	if code != http.StatusOK {
		t.Fatalf("pushdown bbox query = %d: %s", code, pushed)
	}
	code, engine := getTiles(t, client, ts.URL, bbox+"&push=0")
	if code != http.StatusOK {
		t.Fatalf("push=0 bbox query = %d: %s", code, engine)
	}
	if !bytes.Equal(pushed, engine) {
		t.Fatal("pushdown response differs from engine response")
	}

	st := srv.tiles.stats()
	if st.PushQueries != 1 || st.PushSkipHits != 1 {
		t.Fatalf("pushdown counters: %d queries, %d skip hits, want 1/1", st.PushQueries, st.PushSkipHits)
	}
	cs, ok := st.PushByCity[city]
	if !ok || cs.queries != 1 {
		t.Fatalf("query not attributed to city %s: %+v", city, st.PushByCity)
	}
	if cs.blocksSkipped == 0 || cs.blocksScanned == 0 {
		t.Fatalf("city %s: scanned %d / skipped %d groups, want both > 0", city, cs.blocksScanned, cs.blocksSkipped)
	}

	// /statsz renders the pushdown block with the per-city split.
	resp, err := client.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`"pushdown":{"queries":1,"skip_hits":1,"hit_rate":1.000`,
		fmt.Sprintf(`%q:{"queries":1,"blocks_scanned":%d,"blocks_skipped":%d}`, city, cs.blocksScanned, cs.blocksSkipped),
		`"blocks_scanned":`,
	} {
		if !bytes.Contains(stats, []byte(want)) {
			t.Fatalf("statsz misses %s: %s", want, stats)
		}
	}

	// An unclustered directory degrades to full reads: identical bytes,
	// zero skips, and the hit-rate reflects the miss.
	dir2 := t.TempDir()
	ts2, srv2, p2 := startServer(t, dir2, PipelineConfig{}, cls)
	defer ts2.Close()
	client2 := ts2.Client()
	for i := range rows {
		postOne(t, client2, ts2.URL, &rows[i])
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Compact(dir2); err != nil {
		t.Fatal(err)
	}
	code, flat := getTiles(t, client2, ts2.URL, bbox)
	if code != http.StatusOK {
		t.Fatalf("unclustered bbox query = %d: %s", code, flat)
	}
	if !bytes.Equal(flat, pushed) {
		t.Fatal("unclustered response differs from clustered response")
	}
	if st2 := srv2.tiles.stats(); st2.PushQueries != 1 || st2.PushSkipHits != 0 {
		t.Fatalf("unclustered pushdown counters: %+v", st2)
	}
}
