package ingest

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"speedctx/internal/opendata"
	"speedctx/internal/tilequery"
)

func getTiles(t testing.TB, client *http.Client, url, params string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url + "/v1/tiles" + params)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestTilesEndpointIdentity is the serving-path determinism gate: the
// /v1/tiles bytes from a server that watched segments seal one by one
// equal the library-path rendering of the same rows, survive a Compact
// (refold) unchanged, and equal a cold-restarted server's first response.
func TestTilesEndpointIdentity(t *testing.T) {
	cls, rows := loadClassifiers(t)
	dir := t.TempDir()
	ts, srv, p := startServer(t, dir, PipelineConfig{BatchRows: 100, MaxBatchAge: -1}, cls)
	defer ts.Close()
	client := ts.Client()
	for i := range rows {
		postOne(t, client, ts.URL, &rows[i])
	}
	// Mid-run probe: sealing is asynchronous, so only the status is
	// asserted here.
	if code, body := getTiles(t, client, ts.URL, ""); code != http.StatusOK {
		t.Fatalf("mid-run /v1/tiles = %d: %s", code, body)
	}
	if err := p.Close(); err != nil { // seals the tail
		t.Fatal(err)
	}

	code, live := getTiles(t, client, ts.URL, "")
	if code != http.StatusOK {
		t.Fatalf("/v1/tiles = %d: %s", code, live)
	}

	// Library-path expectation over the same submissions, tiers recomputed
	// exactly as the server stamped them.
	exp := &tilequery.Rows{}
	for i := range rows {
		r := &rows[i]
		a := cls[r.City].ClassifyOne(r.DownloadMbps, r.UploadMbps)
		exp.UserID = append(exp.UserID, r.UserID)
		exp.City = append(exp.City, r.City)
		exp.Download = append(exp.Download, r.DownloadMbps)
		exp.Upload = append(exp.Upload, r.UploadMbps)
		exp.Latency = append(exp.Latency, r.LatencyMs)
		exp.Tier = append(exp.Tier, a.Tier)
	}
	tiles, err := tilequery.Aggregate(exp, tilequery.Config{}, tilequery.Query{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := tilequery.AppendTilesJSON(nil, opendata.TileZoom, tiles, "")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(live, want) {
		t.Fatalf("endpoint bytes diverge from library aggregation (%d vs %d bytes)", len(live), len(want))
	}

	// Warm repeat: identical bytes, served from the result cache.
	if _, again := getTiles(t, client, ts.URL, ""); !bytes.Equal(again, live) {
		t.Fatal("warm response differs from cold response")
	}
	if st := srv.tiles.stats(); st.CacheHits == 0 {
		t.Fatalf("warm query hit no cache entries: %+v", st)
	}

	// Compaction rewrites the directory into one segment; the replayed fold
	// must reproduce the same bytes.
	if _, err := Compact(dir); err != nil {
		t.Fatal(err)
	}
	if _, after := getTiles(t, client, ts.URL, ""); !bytes.Equal(after, live) {
		t.Fatal("response changed across Compact")
	}
	if st := srv.tiles.stats(); st.Refolds != 1 || st.Segments != 1 {
		t.Fatalf("expected one refold over one segment: %+v", st)
	}
	if st := srv.tiles.stats(); st.ColsSkipped == 0 || st.ColsDecoded == 0 {
		t.Fatalf("pruned fold decoded no/all columns: %+v", st)
	}

	// A cold server over the same directory answers identically at once.
	ts2, _, p2 := startServer(t, dir, PipelineConfig{}, cls)
	defer ts2.Close()
	defer p2.Close()
	if _, cold := getTiles(t, ts2.Client(), ts2.URL, ""); !bytes.Equal(cold, live) {
		t.Fatal("cold-restart response differs from live-fold response")
	}
}

func TestTilesEndpointQueries(t *testing.T) {
	cls, rows := loadClassifiers(t)
	dir := t.TempDir()
	ts, _, p := startServer(t, dir, PipelineConfig{}, cls)
	defer ts.Close()
	client := ts.Client()
	for i := range rows {
		postOne(t, client, ts.URL, &rows[i])
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// bbox around one fixture city's box selects exactly that city's tiles.
	city := rows[0].City
	c := opendata.CityCenter(city)
	bbox := fmt.Sprintf("?bbox=%g,%g,%g,%g", c.Lat-0.11, c.Lon-0.11, c.Lat+0.11, c.Lon+0.11)
	code, got := getTiles(t, client, ts.URL, bbox)
	if code != http.StatusOK {
		t.Fatalf("bbox query = %d: %s", code, got)
	}
	exp := &tilequery.Rows{}
	for i := range rows {
		r := &rows[i]
		if r.City != city {
			continue
		}
		a := cls[r.City].ClassifyOne(r.DownloadMbps, r.UploadMbps)
		exp.UserID = append(exp.UserID, r.UserID)
		exp.City = append(exp.City, r.City)
		exp.Download = append(exp.Download, r.DownloadMbps)
		exp.Upload = append(exp.Upload, r.UploadMbps)
		exp.Latency = append(exp.Latency, r.LatencyMs)
		exp.Tier = append(exp.Tier, a.Tier)
	}
	tiles, err := tilequery.Aggregate(exp, tilequery.Config{}, tilequery.Query{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := tilequery.AppendTilesJSON(nil, opendata.TileZoom, tiles, "")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(got, want) {
		t.Fatalf("bbox response does not isolate city %s tiles", city)
	}

	// Roll-up zoom plus metric projection.
	code, proj := getTiles(t, client, ts.URL, "?zoom=12&metric=download")
	if code != http.StatusOK || !bytes.Contains(proj, []byte(`"metric":"download"`)) {
		t.Fatalf("metric query = %d: %.120s", code, proj)
	}
	// CSV format carries the full schema header.
	code, csvBody := getTiles(t, client, ts.URL, "?format=csv")
	if code != http.StatusOK || !strings.HasPrefix(string(csvBody), "quadkey,avg_d_kbps,") {
		t.Fatalf("csv query = %d: %.120s", code, csvBody)
	}

	// Parameter validation.
	for _, bad := range []string{"?zoom=0", "?zoom=17", "?zoom=x", "?bbox=1,2,3", "?bbox=9,9,1,1", "?metric=nope"} {
		if code, body := getTiles(t, client, ts.URL, bad); code != http.StatusBadRequest {
			t.Fatalf("%s = %d (%.80s), want 400", bad, code, body)
		}
	}
	resp, err := client.Post(ts.URL+"/v1/tiles", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/tiles = %d, want 405", resp.StatusCode)
	}

	// statsz exposes the tile_cache block.
	resp, err = client.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(stats, []byte(`"tile_cache":{"rows":`)) {
		t.Fatalf("statsz misses tile_cache: %s", stats)
	}
}
