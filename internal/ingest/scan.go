package ingest

// Streamed segment scans (DESIGN.md §14): every ingest-side consumer of a
// sealed .sxc segment — the tile-layer refresh fold, sketch priming at
// startup, and compaction — iterates the file through a
// dataset.BlockScanner instead of materializing whole-segment columns, so
// peak memory stays bounded by the scan batch however large a segment
// grew.

import (
	"errors"
	"fmt"

	"speedctx/internal/core"
	"speedctx/internal/dataset"
)

// sketchSampleSelection is the four-column projection the sketch-rebin
// fallback streams: just what AddSample and the per-city filter consume.
var sketchSampleSelection = dataset.SnapshotSelection{
	Ingest: dataset.Cols(
		dataset.IngestColCity, dataset.IngestColDownload,
		dataset.IngestColUpload, dataset.IngestColUploadTier,
	),
}

// citySampleScanner adapts a block scan of ingest rows into
// core.TierSampleScanner, keeping only one city's rows. Batches reuse its
// filter buffers, mirroring the scanner's own reuse contract.
type citySampleScanner struct {
	sc   *dataset.BlockScanner
	city string
	out  core.TierSampleBatch
}

func (a *citySampleScanner) Scan() bool {
	for a.sc.Scan() {
		b := a.sc.Batch()
		if b.Kind != dataset.SectionIngest || b.Rows == 0 {
			continue
		}
		g := b.Ingest
		a.out.UploadTier = a.out.UploadTier[:0]
		a.out.Download = a.out.Download[:0]
		a.out.Upload = a.out.Upload[:0]
		for i, city := range g.City {
			if city != a.city {
				continue
			}
			a.out.UploadTier = append(a.out.UploadTier, g.UploadTier[i])
			a.out.Download = append(a.out.Download, g.Download[i])
			a.out.Upload = append(a.out.Upload, g.Upload[i])
		}
		return true
	}
	return false
}

func (a *citySampleScanner) TierSamples() core.TierSampleBatch { return a.out }
func (a *citySampleScanner) Err() error                        { return a.sc.Err() }

// rebinCitySamples rebuilds one city's sketch contribution by streaming
// the segment's raw rows — the fallback for legacy segments without
// bundles, or bundles on a foreign grid.
func rebinCitySamples(path, city string, spec CitySketchSpec, batchRows int) (*core.TierSketches, error) {
	src, err := dataset.OpenFileSource(path)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	sc, err := dataset.NewBlockScanner(src, sketchSampleSelection, batchRows)
	if err != nil {
		return nil, err
	}
	return core.SketchesFromScan(spec.Spec, spec.Tiers,
		&citySampleScanner{sc: sc, city: city})
}

// scanSegmentBundles streams just a segment's sketch section — the scan
// seeks past every row block, so this reads a few KiB however many rows
// the segment holds.
func scanSegmentBundles(path string, batchRows int) ([]dataset.SketchBundle, error) {
	src, err := dataset.OpenFileSource(path)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	sc, err := dataset.NewBlockScanner(src, dataset.SnapshotSelection{Sketches: true}, batchRows)
	if err != nil {
		return nil, err
	}
	var bundles []dataset.SketchBundle
	for sc.Scan() {
		bundles = append(bundles, sc.Batch().Sketches...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return bundles, nil
}

// segmentScan is one segment's compaction payload: its rows (copied out
// of the reused batch buffers) and its persisted sketch bundles.
type segmentScan struct {
	rows    []dataset.IngestRow
	bundles []dataset.SketchBundle
}

// compactSelection materializes everything a compaction re-encodes: the
// full ingest section plus the sketch bundles.
var compactSelection = dataset.SnapshotSelection{
	Ingest: dataset.AllColumns, Sketches: true,
}

// scanSegmentsForCompact streams every segment concurrently (one scanner
// per file via internal/parallel) and returns the per-segment payloads in
// path order — the deterministic ordered reduction compaction folds over.
func scanSegmentsForCompact(paths []string, par, batchRows int) ([]segmentScan, error) {
	return dataset.ScanSegments(par, paths, compactSelection, batchRows,
		func(_ int, sc *dataset.BlockScanner) (segmentScan, error) {
			var d segmentScan
			sawIngest := false
			for sc.Scan() {
				b := sc.Batch()
				switch b.Kind {
				case dataset.SectionIngest:
					sawIngest = true
					if b.Rows > 0 {
						// Rows() copies each row out of the batch's reused
						// columns (strings are stable dictionary entries).
						d.rows = append(d.rows, b.Ingest.Rows()...)
					}
				case dataset.SectionSketch:
					d.bundles = append(d.bundles, b.Sketches...)
				default:
					return d, fmt.Errorf("unexpected section kind %d in segment", b.Kind)
				}
			}
			if err := sc.Err(); err != nil {
				return d, err
			}
			if !sawIngest {
				return d, errors.New("snapshot carries no ingest section")
			}
			return d, nil
		})
}
