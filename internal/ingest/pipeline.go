// Package ingest closes the paper's production loop: a high-concurrency
// HTTP service that accepts completed speed-test results, contextualizes
// each <download, upload> tuple against the fitted per-city BST model at
// ingest time (core.Classifier — no refit, no per-request allocation), and
// persists the accepted rows into the PR 5 .sxc snapshot store through an
// asynchronous write-behind batcher.
//
// Architecture (DESIGN.md §11):
//
//	HTTP handlers ──► sharded bounded queues ──► batcher ──► sealed .sxc segments
//	 (classify)          (backpressure)        (write-behind)   (sort-on-seal)
//
// Queues are bounded channels: when the batcher falls behind, producers
// block — backpressure, never drops — which surfaces to clients as slower
// acks, exactly like a loaded collector should behave. Sealed segments are
// written with the store's atomic tempfile+rename discipline and are
// internally sorted by a stable total key; Compact merges every segment
// into one canonical snapshot whose bytes depend only on the ingested row
// set — not on worker count, shard count, queue depth, or arrival
// interleaving.
package ingest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"speedctx/internal/dataset"
)

// PipelineConfig tunes the write-behind path. The zero value selects the
// defaults noted on each field.
type PipelineConfig struct {
	// Dir is the segment directory. Required.
	Dir string
	// BatchRows seals a segment once this many rows are pending.
	// Default 65536.
	BatchRows int
	// MaxBatchAge seals a partial segment once its oldest row has waited
	// this long, bounding ingest-to-durable latency under a trickle.
	// Default 2s; negative disables age-based sealing.
	MaxBatchAge time.Duration
	// QueueShards is the number of bounded queues between the handlers
	// and the batcher. Default 4.
	QueueShards int
	// QueueDepth is each shard's capacity in rows. Default 4096.
	QueueDepth int
}

func (c *PipelineConfig) defaults() {
	if c.BatchRows <= 0 {
		c.BatchRows = 65536
	}
	if c.MaxBatchAge == 0 {
		c.MaxBatchAge = 2 * time.Second
	}
	if c.QueueShards <= 0 {
		c.QueueShards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
}

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("ingest: pipeline closed")

// Pipeline is the accepted-row path: sharded bounded queues feeding a
// write-behind batcher that seals sorted .sxc segments.
type Pipeline struct {
	cfg    PipelineConfig
	queues []chan dataset.IngestRow
	rr     atomic.Uint64 // round-robin enqueue cursor

	// closeMu serializes Submit against Close: Submits hold it shared, so
	// Close's exclusive acquire waits for in-flight enqueues before the
	// channels close.
	closeMu sync.RWMutex
	closed  bool

	mu       sync.Mutex // guards pending, oldest, segSeq, firstErr
	pending  []dataset.IngestRow
	oldest   time.Time
	segSeq   int
	firstErr error

	drainers sync.WaitGroup
	ageStop  chan struct{}
	ageDone  chan struct{}

	rows   atomic.Uint64 // rows handed to the batcher
	seals  atomic.Uint64 // segments sealed
	sealed atomic.Uint64 // rows sealed to disk
}

// NewPipeline starts the shard drainers and the age flusher.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	p, err := newPipeline(cfg, true)
	return p, err
}

// newPipeline is NewPipeline with a test seam: startDrain=false builds the
// queues but leaves them undrained, so tests can observe backpressure.
// Such a pipeline must have startDrain called exactly once before Close.
func newPipeline(cfg PipelineConfig, startDrain bool) (*Pipeline, error) {
	cfg.defaults()
	if cfg.Dir == "" {
		return nil, errors.New("ingest: PipelineConfig.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:     cfg,
		queues:  make([]chan dataset.IngestRow, cfg.QueueShards),
		ageStop: make(chan struct{}),
		ageDone: make(chan struct{}),
	}
	for i := range p.queues {
		p.queues[i] = make(chan dataset.IngestRow, cfg.QueueDepth)
	}
	if startDrain {
		p.startDrain()
	}
	return p, nil
}

// startDrain launches one drainer per shard plus the age flusher.
func (p *Pipeline) startDrain() {
	for _, q := range p.queues {
		p.drainers.Add(1)
		go func(q chan dataset.IngestRow) {
			defer p.drainers.Done()
			for row := range q {
				p.add(row)
			}
		}(q)
	}
	go p.ageFlusher()
}

// Submit hands one classified row to the write-behind path. It blocks while
// the row's shard queue is full (backpressure) and returns ErrClosed once
// Close has begun.
func (p *Pipeline) Submit(row dataset.IngestRow) error {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	shard := p.rr.Add(1) % uint64(len(p.queues))
	p.queues[shard] <- row
	return nil
}

// add appends one row to the pending batch, sealing when the size
// threshold is reached. The seal's encode+write runs outside the lock, so
// other shards keep batching while a segment is written behind.
func (p *Pipeline) add(row dataset.IngestRow) {
	p.rows.Add(1)
	p.mu.Lock()
	if len(p.pending) == 0 {
		p.oldest = time.Now()
	}
	p.pending = append(p.pending, row)
	if len(p.pending) < p.cfg.BatchRows {
		p.mu.Unlock()
		return
	}
	batch, seq := p.takeLocked()
	p.mu.Unlock()
	p.seal(batch, seq)
}

// takeLocked detaches the pending batch and claims the next segment number.
// Callers hold p.mu.
func (p *Pipeline) takeLocked() ([]dataset.IngestRow, int) {
	batch := p.pending
	p.pending = make([]dataset.IngestRow, 0, p.cfg.BatchRows)
	seq := p.segSeq
	p.segSeq++
	return batch, seq
}

// ageFlusher seals partial batches whose oldest row exceeds MaxBatchAge.
func (p *Pipeline) ageFlusher() {
	defer close(p.ageDone)
	if p.cfg.MaxBatchAge < 0 {
		<-p.ageStop
		return
	}
	tick := p.cfg.MaxBatchAge / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-p.ageStop:
			return
		case <-t.C:
			p.mu.Lock()
			if len(p.pending) == 0 || time.Since(p.oldest) < p.cfg.MaxBatchAge {
				p.mu.Unlock()
				continue
			}
			batch, seq := p.takeLocked()
			p.mu.Unlock()
			p.seal(batch, seq)
		}
	}
}

// seal sorts a batch into the stable key order, encodes it as a one-section
// .sxc image, and atomically writes segment file seq. Errors latch into
// firstErr and surface from Close.
func (p *Pipeline) seal(batch []dataset.IngestRow, seq int) {
	if len(batch) == 0 {
		return
	}
	dataset.SortIngestRows(batch)
	buf, err := dataset.EncodeIngestSegment(dataset.ColumnizeIngest(batch))
	if err == nil {
		err = writeAtomic(p.segmentPath(seq), buf)
	}
	if err != nil {
		p.mu.Lock()
		if p.firstErr == nil {
			p.firstErr = fmt.Errorf("ingest: seal segment %d: %w", seq, err)
		}
		p.mu.Unlock()
		return
	}
	p.seals.Add(1)
	p.sealed.Add(uint64(len(batch)))
}

func (p *Pipeline) segmentPath(seq int) string {
	return filepath.Join(p.cfg.Dir, fmt.Sprintf("seg-%08d%s", seq, segmentSuffix))
}

// writeAtomic is the store's tempfile+rename discipline: readers never see
// a partial segment, and crashed writers leave only removable temp files.
func writeAtomic(path string, buf []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Close drains and seals everything: it stops intake (subsequent Submits
// return ErrClosed), waits for the queues to empty, seals the final partial
// batch, and returns the first seal error, if any.
func (p *Pipeline) Close() error {
	p.closeMu.Lock()
	alreadyClosed := p.closed
	p.closed = true
	if !alreadyClosed {
		for _, q := range p.queues {
			close(q)
		}
	}
	p.closeMu.Unlock()
	if alreadyClosed {
		<-p.ageDone
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.firstErr
	}
	p.drainers.Wait()
	select {
	case <-p.ageDone:
	default:
		close(p.ageStop)
		<-p.ageDone
	}
	p.mu.Lock()
	batch, seq := p.takeLocked()
	p.mu.Unlock()
	p.seal(batch, seq)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.firstErr
}

// Stats reports the pipeline's row accounting.
func (p *Pipeline) Stats() (queued, sealedRows, segments uint64) {
	return p.rows.Load(), p.sealed.Load(), p.seals.Load()
}

const (
	segmentSuffix = ".sxc"
	// CompactedName is the canonical snapshot Compact writes.
	CompactedName = "ingest.sxc"
)

// Compact merges every sealed segment in dir (and any previous compacted
// snapshot) into the single canonical snapshot CompactedName, sorted by the
// stable row key, then removes the merged segments. The result's bytes are
// a function of the ingested row set alone: any worker count, shard count,
// or arrival interleaving that drained the same rows compacts to the same
// file — the determinism contract the tests gate.
func Compact(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasSuffix(name, segmentSuffix) {
			files = append(files, name)
		}
	}
	sort.Strings(files)
	var rows []dataset.IngestRow
	for _, name := range files {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		cols, err := dataset.DecodeIngestSegment(data)
		if err != nil {
			return "", fmt.Errorf("ingest: compact %s: %w", name, err)
		}
		rows = append(rows, cols.Rows()...)
	}
	dataset.SortIngestRows(rows)
	buf, err := dataset.EncodeIngestSegment(dataset.ColumnizeIngest(rows))
	if err != nil {
		return "", err
	}
	out := filepath.Join(dir, CompactedName)
	if err := writeAtomic(out, buf); err != nil {
		return "", err
	}
	for _, name := range files {
		if name == CompactedName {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return "", err
		}
	}
	return out, nil
}
