// Package ingest closes the paper's production loop: a high-concurrency
// HTTP service that accepts completed speed-test results, contextualizes
// each <download, upload> tuple against the fitted per-city BST model at
// ingest time (core.Classifier — no refit, no per-request allocation), and
// persists the accepted rows into the PR 5 .sxc snapshot store through an
// asynchronous write-behind batcher.
//
// Architecture (DESIGN.md §11):
//
//	HTTP handlers ──► sharded bounded queues ──► batcher ──► sealed .sxc segments
//	 (classify)          (backpressure)        (write-behind)   (sort-on-seal)
//
// Queues are bounded channels: when the batcher falls behind, producers
// block — backpressure, never drops — which surfaces to clients as slower
// acks, exactly like a loaded collector should behave. Sealed segments are
// written with the store's atomic tempfile+rename discipline and are
// internally sorted by a stable total key; Compact merges every segment
// into one canonical snapshot whose bytes depend only on the ingested row
// set — not on worker count, shard count, queue depth, or arrival
// interleaving.
package ingest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"speedctx/internal/core"
	"speedctx/internal/dataset"
	"speedctx/internal/opendata"
)

// PipelineConfig tunes the write-behind path. The zero value selects the
// defaults noted on each field.
type PipelineConfig struct {
	// Dir is the segment directory. Required.
	Dir string
	// BatchRows seals a segment once this many rows are pending.
	// Default 65536.
	BatchRows int
	// MaxBatchAge seals a partial segment once its oldest row has waited
	// this long, bounding ingest-to-durable latency under a trickle.
	// Default 2s; negative disables age-based sealing.
	MaxBatchAge time.Duration
	// QueueShards is the number of bounded queues between the handlers
	// and the batcher. Default 4.
	QueueShards int
	// QueueDepth is each shard's capacity in rows. Default 4096.
	QueueDepth int
	// ScanBatchRows is the row-batch size of the streamed segment scans
	// (sketch priming, tile folds, compaction; DESIGN.md §14). It bounds
	// scan memory and never affects results. 0 = dataset.DefaultScanBatchRows.
	ScanBatchRows int
	// Sketches declares the per-city sketch grids (DESIGN.md §12). For
	// each listed city the pipeline accumulates mergeable tier sketches:
	// every sealed segment embeds the sketches of its own rows (bucketed
	// by the persisted UploadTier verdicts), and the pipeline maintains
	// the running merge of all sealed segments in memory — primed from
	// the directory's existing segments at startup, so a restart observes
	// exactly the sketch state a live run would hold. Empty disables
	// sketch accumulation (segments then carry rows only).
	Sketches map[string]CitySketchSpec
}

// CitySketchSpec declares one city's sketch shape: the grid spec plus the
// number of catalog upload tiers (one download sketch each).
type CitySketchSpec struct {
	Spec  core.SketchSpec
	Tiers int
}

func (c *PipelineConfig) defaults() {
	if c.BatchRows <= 0 {
		c.BatchRows = 65536
	}
	if c.MaxBatchAge == 0 {
		c.MaxBatchAge = 2 * time.Second
	}
	if c.QueueShards <= 0 {
		c.QueueShards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
}

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("ingest: pipeline closed")

// Pipeline is the accepted-row path: sharded bounded queues feeding a
// write-behind batcher that seals sorted .sxc segments.
type Pipeline struct {
	cfg    PipelineConfig
	queues []chan dataset.IngestRow
	rr     atomic.Uint64 // round-robin enqueue cursor

	// closeMu serializes Submit against Close: Submits hold it shared, so
	// Close's exclusive acquire waits for in-flight enqueues before the
	// channels close.
	closeMu sync.RWMutex
	closed  bool

	mu       sync.Mutex // guards pending, oldest, segSeq, firstErr
	pending  []dataset.IngestRow
	oldest   time.Time
	segSeq   int
	firstErr error

	// sketchMu guards sealedSk, the running merge of every sealed
	// segment's sketches (only cities listed in cfg.Sketches).
	sketchMu sync.Mutex
	sealedSk map[string]*core.TierSketches

	drainers sync.WaitGroup
	ageStop  chan struct{}
	ageDone  chan struct{}

	rows   atomic.Uint64 // rows handed to the batcher
	seals  atomic.Uint64 // segments sealed
	sealed atomic.Uint64 // rows sealed to disk
}

// NewPipeline starts the shard drainers and the age flusher.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	p, err := newPipeline(cfg, true)
	return p, err
}

// newPipeline is NewPipeline with a test seam: startDrain=false builds the
// queues but leaves them undrained, so tests can observe backpressure.
// Such a pipeline must have startDrain called exactly once before Close.
func newPipeline(cfg PipelineConfig, startDrain bool) (*Pipeline, error) {
	cfg.defaults()
	if cfg.Dir == "" {
		return nil, errors.New("ingest: PipelineConfig.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:     cfg,
		queues:  make([]chan dataset.IngestRow, cfg.QueueShards),
		ageStop: make(chan struct{}),
		ageDone: make(chan struct{}),
	}
	for i := range p.queues {
		p.queues[i] = make(chan dataset.IngestRow, cfg.QueueDepth)
	}
	if err := p.primeSketches(); err != nil {
		return nil, err
	}
	if startDrain {
		p.startDrain()
	}
	return p, nil
}

// primeSketches rebuilds the running sealed-sketch merge from the segments
// already in the directory, so a restarted pipeline holds exactly the
// sketch state the previous process accumulated — the foundation of the
// cold-restart ≡ live-refresh property. Each segment contributes its
// persisted sketch bundles when they match the configured grids, and is
// re-binned from its rows otherwise (legacy segments, or a changed spec).
func (p *Pipeline) primeSketches() error {
	if len(p.cfg.Sketches) == 0 {
		return nil
	}
	p.sealedSk = make(map[string]*core.TierSketches, len(p.cfg.Sketches))
	for city, spec := range p.cfg.Sketches {
		ts, err := core.NewTierSketches(spec.Spec, spec.Tiers)
		if err != nil {
			return fmt.Errorf("ingest: sketch spec for %q: %w", city, err)
		}
		p.sealedSk[city] = ts
	}
	entries, err := os.ReadDir(p.cfg.Dir)
	if err != nil {
		return err
	}
	var files []string
	for _, e := range entries {
		if name := e.Name(); e.Type().IsRegular() && strings.HasSuffix(name, segmentSuffix) {
			files = append(files, name)
		}
	}
	sort.Strings(files)
	for _, name := range files {
		if err := p.foldSegmentSketches(filepath.Join(p.cfg.Dir, name)); err != nil {
			return fmt.Errorf("ingest: prime sketches from %s: %w", name, err)
		}
	}
	return nil
}

// foldSegmentSketches merges one sealed segment into the running
// sealed-sketch state, without materializing the segment: a bundle-only
// block scan seeks past every row section, so priming reads a few KiB per
// segment however many rows it holds. The segment's contribution is first
// assembled into fresh spec-shaped sketches (from its persisted bundles,
// or by streaming its raw rows when a bundle is absent or on a foreign
// grid), then folded in — so a partially bad segment never half-merges.
func (p *Pipeline) foldSegmentSketches(path string) error {
	bundles, err := scanSegmentBundles(path, p.cfg.ScanBatchRows)
	if err != nil {
		return err
	}
	byCity := make(map[string][]dataset.SketchBundle)
	for _, b := range bundles {
		byCity[b.City] = append(byCity[b.City], b)
	}
	for city, spec := range p.cfg.Sketches {
		seg, err := segmentSketches(spec, byCity[city])
		if err != nil {
			// Absent bundles or a foreign grid: rebuild this city's
			// contribution by re-binning the segment's raw rows off a
			// second, column-pruned stream.
			if seg, err = rebinCitySamples(path, city, spec, p.cfg.ScanBatchRows); err != nil {
				return err
			}
		}
		if seg.Count() == 0 {
			continue
		}
		if err := p.sealedSk[city].Merge(seg); err != nil {
			return err
		}
	}
	return nil
}

// segmentSketches assembles one city's persisted bundles into spec-shaped
// tier sketches, failing when no bundle exists or a bundle's grid disagrees
// with the spec.
func segmentSketches(spec CitySketchSpec, bundles []dataset.SketchBundle) (*core.TierSketches, error) {
	if len(bundles) == 0 {
		return nil, errors.New("ingest: no sketch bundles for city")
	}
	seg, err := core.NewTierSketches(spec.Spec, spec.Tiers)
	if err != nil {
		return nil, err
	}
	for _, b := range bundles {
		switch {
		case b.Tier == dataset.UploadSketchTier:
			err = seg.Upload.Merge(b.Sketch)
		case b.Tier >= 0 && b.Tier < len(seg.Downloads):
			err = seg.Downloads[b.Tier].Merge(b.Sketch)
		default:
			err = fmt.Errorf("ingest: sketch tier %d out of range", b.Tier)
		}
		if err != nil {
			return nil, err
		}
	}
	return seg, nil
}

// startDrain launches one drainer per shard plus the age flusher.
func (p *Pipeline) startDrain() {
	for _, q := range p.queues {
		p.drainers.Add(1)
		go func(q chan dataset.IngestRow) {
			defer p.drainers.Done()
			for row := range q {
				p.add(row)
			}
		}(q)
	}
	go p.ageFlusher()
}

// Submit hands one classified row to the write-behind path. It blocks while
// the row's shard queue is full (backpressure) and returns ErrClosed once
// Close has begun.
func (p *Pipeline) Submit(row dataset.IngestRow) error {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	shard := p.rr.Add(1) % uint64(len(p.queues))
	p.queues[shard] <- row
	return nil
}

// add appends one row to the pending batch, sealing when the size
// threshold is reached. The seal's encode+write runs outside the lock, so
// other shards keep batching while a segment is written behind.
func (p *Pipeline) add(row dataset.IngestRow) {
	p.rows.Add(1)
	p.mu.Lock()
	if len(p.pending) == 0 {
		p.oldest = time.Now()
	}
	p.pending = append(p.pending, row)
	if len(p.pending) < p.cfg.BatchRows {
		p.mu.Unlock()
		return
	}
	batch, seq := p.takeLocked()
	p.mu.Unlock()
	p.seal(batch, seq)
}

// takeLocked detaches the pending batch and claims the next segment number.
// Callers hold p.mu.
func (p *Pipeline) takeLocked() ([]dataset.IngestRow, int) {
	batch := p.pending
	p.pending = make([]dataset.IngestRow, 0, p.cfg.BatchRows)
	seq := p.segSeq
	p.segSeq++
	return batch, seq
}

// ageFlusher seals partial batches whose oldest row exceeds MaxBatchAge.
func (p *Pipeline) ageFlusher() {
	defer close(p.ageDone)
	if p.cfg.MaxBatchAge < 0 {
		<-p.ageStop
		return
	}
	tick := p.cfg.MaxBatchAge / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-p.ageStop:
			return
		case <-t.C:
			p.mu.Lock()
			if len(p.pending) == 0 || time.Since(p.oldest) < p.cfg.MaxBatchAge {
				p.mu.Unlock()
				continue
			}
			batch, seq := p.takeLocked()
			p.mu.Unlock()
			p.seal(batch, seq)
		}
	}
}

// seal sorts a batch into the stable key order, encodes it as a one-section
// .sxc image (plus the batch's sketch bundles when sketches are configured),
// and atomically writes segment file seq. Once the segment is durable, its
// sketches fold into the running sealed-sketch merge — so SealedSketches
// only ever describes rows a restart would also recover. Errors latch into
// firstErr and surface from Close.
func (p *Pipeline) seal(batch []dataset.IngestRow, seq int) {
	if len(batch) == 0 {
		return
	}
	dataset.SortIngestRows(batch)
	sketches, bundles, err := p.batchSketches(batch)
	var buf []byte
	if err == nil {
		buf, err = dataset.EncodeIngestSegmentSketches(dataset.ColumnizeIngest(batch), bundles)
	}
	if err == nil {
		err = writeAtomic(p.segmentPath(seq), buf)
	}
	if err != nil {
		p.mu.Lock()
		if p.firstErr == nil {
			p.firstErr = fmt.Errorf("ingest: seal segment %d: %w", seq, err)
		}
		p.mu.Unlock()
		return
	}
	if len(sketches) > 0 {
		p.sketchMu.Lock()
		for city, seg := range sketches {
			if mergeErr := p.sealedSk[city].Merge(seg); mergeErr != nil && err == nil {
				err = mergeErr
			}
		}
		p.sketchMu.Unlock()
		if err != nil {
			p.mu.Lock()
			if p.firstErr == nil {
				p.firstErr = fmt.Errorf("ingest: merge segment %d sketches: %w", seq, err)
			}
			p.mu.Unlock()
		}
	}
	p.seals.Add(1)
	p.sealed.Add(uint64(len(batch)))
}

// batchSketches bins one sorted batch into per-city tier sketches (cities
// with a configured spec and at least one row in the batch) and renders the
// matching persisted bundles, ordered by city then tier so segment bytes
// stay a pure function of the row set.
func (p *Pipeline) batchSketches(batch []dataset.IngestRow) (map[string]*core.TierSketches, []dataset.SketchBundle, error) {
	if len(p.cfg.Sketches) == 0 {
		return nil, nil, nil
	}
	sketches := make(map[string]*core.TierSketches)
	for _, row := range batch {
		ts, ok := sketches[row.City]
		if !ok {
			spec, configured := p.cfg.Sketches[row.City]
			if !configured {
				continue
			}
			var err error
			if ts, err = core.NewTierSketches(spec.Spec, spec.Tiers); err != nil {
				return nil, nil, err
			}
			sketches[row.City] = ts
		}
		ts.AddSample(row.UploadTier, row.DownloadMbps, row.UploadMbps)
	}
	cities := make([]string, 0, len(sketches))
	for city := range sketches {
		cities = append(cities, city)
	}
	sort.Strings(cities)
	var bundles []dataset.SketchBundle
	for _, city := range cities {
		ts := sketches[city]
		bundles = append(bundles, dataset.SketchBundle{City: city, Tier: dataset.UploadSketchTier, Sketch: ts.Upload})
		for ti, d := range ts.Downloads {
			bundles = append(bundles, dataset.SketchBundle{City: city, Tier: ti, Sketch: d})
		}
	}
	return sketches, bundles, nil
}

// SealedSketchesFor returns an independent copy of the running merged
// sketches of every sealed segment for one city, with ok=false when the
// city has no configured sketch spec. The copy is safe to merge and fit
// from while sealing continues.
func (p *Pipeline) SealedSketchesFor(city string) (*core.TierSketches, bool) {
	p.sketchMu.Lock()
	defer p.sketchMu.Unlock()
	ts, ok := p.sealedSk[city]
	if !ok {
		return nil, false
	}
	return ts.Clone(), true
}

// SketchCounts reports the sealed-row count per sketch-configured city —
// the cheap staleness probe the refresh loop polls before paying for a
// clone and refit.
func (p *Pipeline) SketchCounts() map[string]int {
	p.sketchMu.Lock()
	defer p.sketchMu.Unlock()
	if p.sealedSk == nil {
		return nil
	}
	out := make(map[string]int, len(p.sealedSk))
	for city, ts := range p.sealedSk {
		out[city] = ts.Count()
	}
	return out
}

func (p *Pipeline) segmentPath(seq int) string {
	return filepath.Join(p.cfg.Dir, fmt.Sprintf("seg-%08d%s", seq, segmentSuffix))
}

// writeAtomic is the store's tempfile+rename discipline: readers never see
// a partial segment, and crashed writers leave only removable temp files.
func writeAtomic(path string, buf []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Close drains and seals everything: it stops intake (subsequent Submits
// return ErrClosed), waits for the queues to empty, seals the final partial
// batch, and returns the first seal error, if any.
func (p *Pipeline) Close() error {
	p.closeMu.Lock()
	alreadyClosed := p.closed
	p.closed = true
	if !alreadyClosed {
		for _, q := range p.queues {
			close(q)
		}
	}
	p.closeMu.Unlock()
	if alreadyClosed {
		<-p.ageDone
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.firstErr
	}
	p.drainers.Wait()
	select {
	case <-p.ageDone:
	default:
		close(p.ageStop)
		<-p.ageDone
	}
	p.mu.Lock()
	batch, seq := p.takeLocked()
	p.mu.Unlock()
	p.seal(batch, seq)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.firstErr
}

// Stats reports the pipeline's row accounting.
func (p *Pipeline) Stats() (queued, sealedRows, segments uint64) {
	return p.rows.Load(), p.sealed.Load(), p.seals.Load()
}

const (
	segmentSuffix = ".sxc"
	// CompactedName is the canonical snapshot Compact writes.
	CompactedName = "ingest.sxc"
)

// Compact merges every sealed segment in dir (and any previous compacted
// snapshot) into the single canonical snapshot CompactedName, sorted by the
// stable row key, then removes the merged segments. The result's bytes are
// a function of the ingested row set alone: any worker count, shard count,
// or arrival interleaving that drained the same rows compacts to the same
// file — the determinism contract the tests gate.
//
// The merge scan streams every segment concurrently (DESIGN.md §14):
// per-file block scanners decode in parallel and the per-segment payloads
// reduce in sorted file order, so decode overlaps the fold while the
// output bytes stay independent of worker count.
func Compact(dir string) (string, error) {
	return CompactBatched(dir, 0, 0)
}

// CompactBatched is Compact with the concurrency knobs exposed: par
// segments scan at once (0 = all CPUs) in batches of batchRows rows
// (0 = dataset.DefaultScanBatchRows). Neither affects the output bytes.
func CompactBatched(dir string, par, batchRows int) (string, error) {
	return CompactWith(dir, CompactOptions{Par: par, BatchRows: batchRows})
}

// CompactOptions tunes CompactWith. The zero value reproduces Compact:
// all-CPU scans, default batches, unclustered v2 output.
type CompactOptions struct {
	// Par is the number of segments scanned concurrently (0 = all CPUs).
	Par int
	// BatchRows is the scan batch size (0 = dataset.DefaultScanBatchRows).
	// Neither knob affects the output bytes.
	BatchRows int
	// ClusterZoom > 0 emits the compacted snapshot as a format-v3
	// quadkey-clustered zoned file (DESIGN.md §15): rows sorted by packed
	// quadkey at this zoom (ties broken by the stable row key — the
	// clustered canonical order), split into zone-mapped row groups that
	// bbox tile queries skip by seek. 0 keeps the unclustered v2 layout.
	ClusterZoom int
	// ZoneBlockRows is the rows-per-group split of a clustered snapshot
	// (0 = the dataset default, 4096).
	ZoneBlockRows int
	// LocSeed is the location-derivation seed zone quadkeys are computed
	// under (0 = opendata.DefaultLocSeed). It must match the seed the tile
	// query layer serves with, or pushdown degrades to full reads.
	LocSeed int64
}

// CompactWith is Compact with every knob exposed. Clustered or not, the
// output bytes depend only on the ingested row set and the options — both
// sort orders are total and deterministic.
func CompactWith(dir string, opts CompactOptions) (string, error) {
	par, batchRows := opts.Par, opts.BatchRows
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasSuffix(name, segmentSuffix) {
			files = append(files, name)
		}
	}
	sort.Strings(files)
	paths := make([]string, len(files))
	for i, name := range files {
		paths[i] = filepath.Join(dir, name)
	}
	segs, err := scanSegmentsForCompact(paths, par, batchRows)
	if err != nil {
		return "", fmt.Errorf("ingest: compact: %w", err)
	}
	var rows []dataset.IngestRow
	type sketchKey struct {
		city string
		tier int
	}
	merged := make(map[sketchKey]*dataset.SketchBundle)
	for si, seg := range segs {
		rows = append(rows, seg.rows...)
		for _, b := range seg.bundles {
			k := sketchKey{b.City, b.Tier}
			if m, ok := merged[k]; ok {
				if err := m.Sketch.Merge(b.Sketch); err != nil {
					return "", fmt.Errorf("ingest: compact %s: sketch %s/%d: %w", files[si], b.City, b.Tier, err)
				}
			} else {
				merged[k] = &dataset.SketchBundle{City: b.City, Tier: b.Tier, Sketch: b.Sketch.Clone()}
			}
		}
	}
	// Bundle order (city, then tier) is part of the byte-determinism
	// contract: any segment partition of the same rows compacts to the
	// same file.
	keys := make([]sketchKey, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].city != keys[b].city {
			return keys[a].city < keys[b].city
		}
		return keys[a].tier < keys[b].tier
	})
	var bundles []dataset.SketchBundle
	for _, k := range keys {
		bundles = append(bundles, *merged[k])
	}
	var buf []byte
	if opts.ClusterZoom > 0 {
		zo := opendata.NewZoneOptions(opts.ClusterZoom, opts.ZoneBlockRows, opts.LocSeed)
		dataset.SortIngestRowsClustered(rows, zo.Quadkey)
		buf, err = dataset.EncodeIngestSegmentZoned(dataset.ColumnizeIngest(rows), bundles, zo)
	} else {
		dataset.SortIngestRows(rows)
		buf, err = dataset.EncodeIngestSegmentSketches(dataset.ColumnizeIngest(rows), bundles)
	}
	if err != nil {
		return "", err
	}
	out := filepath.Join(dir, CompactedName)
	if err := writeAtomic(out, buf); err != nil {
		return "", err
	}
	for _, name := range files {
		if name == CompactedName {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return "", err
		}
	}
	return out, nil
}
