package ingest

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"speedctx/internal/dataset"
)

func testRows(n int, seed int64) []dataset.IngestRow {
	rng := rand.New(rand.NewSource(seed))
	base := time.Unix(1609459200, 0).UTC()
	rows := make([]dataset.IngestRow, n)
	for i := range rows {
		rows[i] = dataset.IngestRow{
			TestID:       i,
			UserID:       rng.Intn(n/4 + 1),
			City:         string(rune('A' + i%4)),
			ISP:          "ISP-" + string(rune('A'+i%4)),
			Timestamp:    base.Add(time.Duration(i) * time.Second),
			DownloadMbps: rng.Float64() * 1000,
			UploadMbps:   rng.Float64() * 35,
			LatencyMs:    rng.Float64() * 50,
			UploadTier:   rng.Intn(5) - 1,
			Tier:         rng.Intn(7),
			Confidence:   rng.Float64(),
		}
	}
	return rows
}

// compactBytes drains rows through a pipeline with the given shape, closes
// it, compacts, and returns the canonical snapshot bytes.
func compactBytes(t *testing.T, rows []dataset.IngestRow, cfg PipelineConfig, producers int) []byte {
	t.Helper()
	cfg.Dir = t.TempDir()
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(rows); i += producers {
				if err := p.Submit(rows[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	queued, sealed, _ := p.Stats()
	if queued != uint64(len(rows)) || sealed != uint64(len(rows)) {
		t.Fatalf("queued=%d sealed=%d, want %d rows (no drops)", queued, sealed, len(rows))
	}
	out, err := Compact(cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestPipelineDeterministicSnapshot is the tentpole contract: draining the
// same N rows yields a byte-identical compacted snapshot regardless of
// shard count, queue depth, batch size, producer count, or interleaving.
func TestPipelineDeterministicSnapshot(t *testing.T) {
	rows := testRows(2000, 1)
	want := compactBytes(t, rows, PipelineConfig{
		QueueShards: 1, BatchRows: 1 << 20, MaxBatchAge: -1,
	}, 1)
	variants := []struct {
		name      string
		cfg       PipelineConfig
		producers int
	}{
		{"shards4-small-batches", PipelineConfig{QueueShards: 4, QueueDepth: 16, BatchRows: 64, MaxBatchAge: -1}, 8},
		{"shards2-age-flush", PipelineConfig{QueueShards: 2, BatchRows: 1 << 20, MaxBatchAge: time.Millisecond}, 4},
		{"shards8-deep", PipelineConfig{QueueShards: 8, QueueDepth: 1, BatchRows: 100, MaxBatchAge: -1}, 16},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			// Shuffle the submission order too: arrival order must not
			// leak into the snapshot.
			shuffled := append([]dataset.IngestRow(nil), rows...)
			rand.New(rand.NewSource(99)).Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			got := compactBytes(t, shuffled, v.cfg, v.producers)
			if !bytes.Equal(got, want) {
				t.Fatalf("compacted snapshot differs from serial reference (%d vs %d bytes)", len(got), len(want))
			}
		})
	}
}

// TestPipelineBackpressure pins the no-drop contract: with the drainers
// parked, Submit blocks once the shard queue is full — it neither drops
// nor errors — and completes when draining starts.
func TestPipelineBackpressure(t *testing.T) {
	p, err := newPipeline(PipelineConfig{
		Dir: t.TempDir(), QueueShards: 1, QueueDepth: 2, BatchRows: 1 << 20, MaxBatchAge: -1,
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	rows := testRows(4, 2)
	for i := 0; i < 2; i++ {
		if err := p.Submit(rows[i]); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan error, 1)
	go func() { blocked <- p.Submit(rows[2]) }()
	select {
	case err := <-blocked:
		t.Fatalf("Submit on a full queue returned (%v); want it to block", err)
	case <-time.After(50 * time.Millisecond):
	}
	p.startDrain()
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Submit never completed after drain started")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, sealed, _ := p.Stats(); sealed != 3 {
		t.Fatalf("sealed %d rows, want 3 (backpressure must not drop)", sealed)
	}
}

func TestPipelineSubmitAfterClose(t *testing.T) {
	p, err := NewPipeline(PipelineConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(testRows(1, 3)[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

// TestPipelineAgeFlush verifies a trickle seals without reaching BatchRows.
func TestPipelineAgeFlush(t *testing.T) {
	dir := t.TempDir()
	p, err := NewPipeline(PipelineConfig{
		Dir: dir, BatchRows: 1 << 20, MaxBatchAge: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Submit(testRows(1, 4)[0]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, segs := p.Stats(); segs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("age flusher never sealed the partial batch")
		}
		time.Sleep(time.Millisecond)
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*"+segmentSuffix))
	if err != nil || len(names) == 0 {
		t.Fatalf("no sealed segment on disk (err=%v)", err)
	}
}

// TestCompactIsIdempotent re-compacts a compacted directory and also folds
// in late segments, checking the snapshot stays canonical.
func TestCompactIsIdempotent(t *testing.T) {
	rows := testRows(300, 5)
	dir := t.TempDir()
	cfg := PipelineConfig{Dir: dir, BatchRows: 50, MaxBatchAge: -1}
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := p.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Compact(dir); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(filepath.Join(dir, CompactedName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compact(dir); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(filepath.Join(dir, CompactedName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("re-compacting a compacted directory changed the snapshot")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("compacted dir has %d entries, want just %s", len(entries), CompactedName)
	}
}
