package ingest

import (
	"errors"
	"fmt"
	"strconv"
	"time"
	"unicode/utf16"
	"unicode/utf8"

	"speedctx/internal/core"
	"speedctx/internal/dataset"
)

// The wire schema is one flat JSON object per completed test:
//
//	{"test_id":17,"user_id":4,"city":"A","isp":"ISP-A",
//	 "timestamp":1609459200000000000,
//	 "download_mbps":412.5,"upload_mbps":18.2,"latency_ms":11.3}
//
// timestamp is Unix nanoseconds UTC. The hand-rolled scanner below exists
// because encoding/json's reflective decode dominated the ingest profile;
// the schema is flat and fixed, so a single left-to-right pass with no
// intermediate map suffices. Unknown keys are skipped (forward
// compatibility); nested values are rejected.

var errMalformed = errors.New("ingest: malformed submission")

// parseSubmission decodes one submission object into row. It leaves the
// classification fields (UploadTier, Tier, Confidence) untouched.
func parseSubmission(b []byte, row *dataset.IngestRow) error {
	i := skipWS(b, 0)
	if i >= len(b) || b[i] != '{' {
		return errMalformed
	}
	i = skipWS(b, i+1)
	if i < len(b) && b[i] == '}' {
		return errors.New("ingest: empty submission")
	}
	seen := 0
	for {
		key, next, err := scanString(b, i)
		if err != nil {
			return err
		}
		i = skipWS(b, next)
		if i >= len(b) || b[i] != ':' {
			return errMalformed
		}
		i = skipWS(b, i+1)
		switch key {
		case "test_id":
			v, next, err := scanInt(b, i)
			if err != nil {
				return fmt.Errorf("ingest: test_id: %w", err)
			}
			row.TestID, i = int(v), next
			seen++
		case "user_id":
			v, next, err := scanInt(b, i)
			if err != nil {
				return fmt.Errorf("ingest: user_id: %w", err)
			}
			row.UserID, i = int(v), next
			seen++
		case "city":
			v, next, err := scanString(b, i)
			if err != nil {
				return fmt.Errorf("ingest: city: %w", err)
			}
			row.City, i = v, next
			seen++
		case "isp":
			v, next, err := scanString(b, i)
			if err != nil {
				return fmt.Errorf("ingest: isp: %w", err)
			}
			row.ISP, i = v, next
			seen++
		case "timestamp":
			v, next, err := scanInt(b, i)
			if err != nil {
				return fmt.Errorf("ingest: timestamp: %w", err)
			}
			row.Timestamp, i = time.Unix(0, v).UTC(), next
			seen++
		case "download_mbps":
			v, next, err := scanFloat(b, i)
			if err != nil {
				return fmt.Errorf("ingest: download_mbps: %w", err)
			}
			row.DownloadMbps, i = v, next
			seen++
		case "upload_mbps":
			v, next, err := scanFloat(b, i)
			if err != nil {
				return fmt.Errorf("ingest: upload_mbps: %w", err)
			}
			row.UploadMbps, i = v, next
			seen++
		case "latency_ms":
			v, next, err := scanFloat(b, i)
			if err != nil {
				return fmt.Errorf("ingest: latency_ms: %w", err)
			}
			row.LatencyMs, i = v, next
			seen++
		default:
			next, err := skipValue(b, i)
			if err != nil {
				return err
			}
			i = next
		}
		i = skipWS(b, i)
		if i >= len(b) {
			return errMalformed
		}
		switch b[i] {
		case ',':
			i = skipWS(b, i+1)
		case '}':
			if rest := skipWS(b, i+1); rest != len(b) {
				return errMalformed
			}
			if seen < 8 {
				return errors.New("ingest: submission missing required fields")
			}
			if row.City == "" {
				return errors.New("ingest: submission city is empty")
			}
			return nil
		default:
			return errMalformed
		}
	}
}

func skipWS(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\r', '\n':
			i++
		default:
			return i
		}
	}
	return i
}

// scanString decodes a JSON string starting at b[i]. The common escape-free
// case is one sub-slice copy; escapes fall back to a rune-by-rune decode.
func scanString(b []byte, i int) (string, int, error) {
	if i >= len(b) || b[i] != '"' {
		return "", i, errMalformed
	}
	start := i + 1
	for j := start; j < len(b); j++ {
		switch b[j] {
		case '"':
			return string(b[start:j]), j + 1, nil
		case '\\':
			return scanEscapedString(b, start)
		}
	}
	return "", i, errMalformed
}

func scanEscapedString(b []byte, start int) (string, int, error) {
	out := make([]byte, 0, 16)
	j := start
	for j < len(b) {
		switch c := b[j]; c {
		case '"':
			return string(out), j + 1, nil
		case '\\':
			if j+1 >= len(b) {
				return "", j, errMalformed
			}
			switch e := b[j+1]; e {
			case '"', '\\', '/':
				out = append(out, e)
				j += 2
			case 'n':
				out = append(out, '\n')
				j += 2
			case 't':
				out = append(out, '\t')
				j += 2
			case 'r':
				out = append(out, '\r')
				j += 2
			case 'b':
				out = append(out, '\b')
				j += 2
			case 'f':
				out = append(out, '\f')
				j += 2
			case 'u':
				if j+6 > len(b) {
					return "", j, errMalformed
				}
				v, err := strconv.ParseUint(string(b[j+2:j+6]), 16, 32)
				if err != nil {
					return "", j, errMalformed
				}
				r := rune(v)
				j += 6
				if utf16.IsSurrogate(r) && j+6 <= len(b) && b[j] == '\\' && b[j+1] == 'u' {
					v2, err := strconv.ParseUint(string(b[j+2:j+6]), 16, 32)
					if err == nil {
						if c := utf16.DecodeRune(r, rune(v2)); c != utf8.RuneError {
							r = c
							j += 6
						}
					}
				}
				out = utf8.AppendRune(out, r)
			default:
				return "", j, errMalformed
			}
		default:
			out = append(out, c)
			j++
		}
	}
	return "", j, errMalformed
}

func numEnd(b []byte, i int) int {
	j := i
	for j < len(b) {
		switch b[j] {
		case '-', '+', '.', 'e', 'E',
			'0', '1', '2', '3', '4', '5', '6', '7', '8', '9':
			j++
		default:
			return j
		}
	}
	return j
}

func scanInt(b []byte, i int) (int64, int, error) {
	j := numEnd(b, i)
	if j == i {
		return 0, i, errMalformed
	}
	v, err := strconv.ParseInt(string(b[i:j]), 10, 64)
	if err != nil {
		return 0, i, err
	}
	return v, j, nil
}

func scanFloat(b []byte, i int) (float64, int, error) {
	j := numEnd(b, i)
	if j == i {
		return 0, i, errMalformed
	}
	v, err := strconv.ParseFloat(string(b[i:j]), 64)
	if err != nil {
		return 0, i, err
	}
	return v, j, nil
}

// skipValue steps over one unknown scalar value (forward compatibility).
// Composite values are rejected: the schema is flat by contract.
func skipValue(b []byte, i int) (int, error) {
	if i >= len(b) {
		return i, errMalformed
	}
	switch b[i] {
	case '"':
		_, next, err := scanString(b, i)
		return next, err
	case 't':
		return expectLit(b, i, "true")
	case 'f':
		return expectLit(b, i, "false")
	case 'n':
		return expectLit(b, i, "null")
	case '{', '[':
		return i, errors.New("ingest: nested values not supported")
	default:
		if j := numEnd(b, i); j > i {
			return j, nil
		}
		return i, errMalformed
	}
}

func expectLit(b []byte, i int, lit string) (int, error) {
	if i+len(lit) > len(b) || string(b[i:i+len(lit)]) != lit {
		return i, errMalformed
	}
	return i + len(lit), nil
}

// appendAck renders the classification ack without encoding/json:
//
//	{"tier":3,"upload_tier":2,"confidence":0.9713}
func appendAck(dst []byte, a core.Assignment) []byte {
	dst = append(dst, `{"tier":`...)
	dst = strconv.AppendInt(dst, int64(a.Tier), 10)
	dst = append(dst, `,"upload_tier":`...)
	dst = strconv.AppendInt(dst, int64(a.UploadTier), 10)
	dst = append(dst, `,"confidence":`...)
	dst = strconv.AppendFloat(dst, a.Confidence, 'g', -1, 64)
	dst = append(dst, '}')
	return dst
}

// appendError renders a per-line batch error ack.
func appendError(dst []byte, err error) []byte {
	dst = append(dst, `{"error":`...)
	dst = strconv.AppendQuote(dst, err.Error())
	dst = append(dst, '}')
	return dst
}

// AppendSubmission renders row in the wire schema — the inverse of
// parseSubmission, shared by the load generator and the tests.
func AppendSubmission(dst []byte, row *dataset.IngestRow) []byte {
	dst = append(dst, `{"test_id":`...)
	dst = strconv.AppendInt(dst, int64(row.TestID), 10)
	dst = append(dst, `,"user_id":`...)
	dst = strconv.AppendInt(dst, int64(row.UserID), 10)
	dst = append(dst, `,"city":`...)
	dst = strconv.AppendQuote(dst, row.City)
	dst = append(dst, `,"isp":`...)
	dst = strconv.AppendQuote(dst, row.ISP)
	dst = append(dst, `,"timestamp":`...)
	dst = strconv.AppendInt(dst, row.Timestamp.UnixNano(), 10)
	dst = append(dst, `,"download_mbps":`...)
	dst = strconv.AppendFloat(dst, row.DownloadMbps, 'g', -1, 64)
	dst = append(dst, `,"upload_mbps":`...)
	dst = strconv.AppendFloat(dst, row.UploadMbps, 'g', -1, 64)
	dst = append(dst, `,"latency_ms":`...)
	dst = strconv.AppendFloat(dst, row.LatencyMs, 'g', -1, 64)
	dst = append(dst, '}')
	return dst
}
