package plans

import (
	"sort"

	"speedctx/internal/geo"
	"speedctx/internal/stats"
	"speedctx/internal/units"
)

// Form477Record is one row of the FCC's Fixed Broadband Deployment data
// (Form 477): an ISP's claim to serve a census block with given maximum
// advertised speeds. The paper uses this dataset only to identify the
// dominant residential ISP per city (§3.1) — it deliberately does NOT
// contain the full plan catalog, which is why the BST methodology needs the
// separate address-level lookup tool.
type Form477Record struct {
	BlockID string
	ISP     string
	MaxDown units.Mbps
	MaxUp   units.Mbps
}

// Form477 is a per-city deployment report.
type Form477 struct {
	CityID  string
	Records []Form477Record
}

// BuildForm477 synthesizes a deployment report for a city: the dominant ISP
// (the city's catalog ISP) claims nearly all blocks; two smaller competitors
// claim overlapping minorities. Coverage draws come from rng, so reports are
// reproducible per seed.
func BuildForm477(city *geo.City, catalog *Catalog, rng *stats.RNG) *Form477 {
	f := &Form477{CityID: city.ID}
	maxDown := catalog.MaxDownload()
	var maxUp units.Mbps
	for _, p := range catalog.Plans {
		if p.Upload > maxUp {
			maxUp = p.Upload
		}
	}
	competitors := []struct {
		name     string
		coverage float64
		down, up units.Mbps
	}{
		{catalog.ISP + "-DSL-rival", 0.45, 100, 10},
		{catalog.ISP + "-fiber-rival", 0.20, 1000, 1000},
	}
	for _, b := range city.Blocks {
		// Dominant ISP covers ~97% of blocks.
		if rng.Bool(0.97) {
			f.Records = append(f.Records, Form477Record{
				BlockID: b.ID, ISP: catalog.ISP, MaxDown: maxDown, MaxUp: maxUp,
			})
		}
		for _, c := range competitors {
			if rng.Bool(c.coverage) {
				f.Records = append(f.Records, Form477Record{
					BlockID: b.ID, ISP: c.name, MaxDown: c.down, MaxUp: c.up,
				})
			}
		}
	}
	return f
}

// BlocksServed counts distinct census blocks each ISP claims.
func (f *Form477) BlocksServed() map[string]int {
	seen := map[string]map[string]bool{}
	for _, r := range f.Records {
		if seen[r.ISP] == nil {
			seen[r.ISP] = map[string]bool{}
		}
		seen[r.ISP][r.BlockID] = true
	}
	out := make(map[string]int, len(seen))
	for isp, blocks := range seen {
		out[isp] = len(blocks)
	}
	return out
}

// DominantISP implements the paper's selection procedure: the ISP covering
// the highest number of census blocks in the city. Ties break
// lexicographically for determinism.
func (f *Form477) DominantISP() string {
	counts := f.BlocksServed()
	type kv struct {
		isp string
		n   int
	}
	var all []kv
	for isp, n := range counts {
		all = append(all, kv{isp, n})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].n != all[b].n {
			return all[a].n > all[b].n
		}
		return all[a].isp < all[b].isp
	})
	if len(all) == 0 {
		return ""
	}
	return all[0].isp
}
