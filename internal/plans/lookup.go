package plans

import (
	"errors"
	"fmt"
	"sort"

	"speedctx/internal/geo"
	"speedctx/internal/units"
)

// ErrQueryBudget is returned by the lookup tool once the per-ISP query
// budget is exhausted. The paper deliberately limits query volume "to
// prevent overloading ISP infrastructure"; the simulated tool enforces the
// same discipline so the survey code path is realistic.
var ErrQueryBudget = errors.New("plans: per-ISP query budget exhausted")

// ErrUnknownCity is returned for an address outside the study cities.
var ErrUnknownCity = errors.New("plans: no catalog for address city")

// LookupTool simulates querying an ISP's availability portal for the plans
// offered at one street address (the modified tool of Major et al. [42]).
// Queries are budgeted per ISP.
type LookupTool struct {
	budget  int
	queries map[string]int // ISP -> queries made
}

// NewLookupTool creates a tool that allows up to budget queries per ISP.
// budget <= 0 means unlimited.
func NewLookupTool(budget int) *LookupTool {
	return &LookupTool{budget: budget, queries: map[string]int{}}
}

// Queries reports how many lookups were issued against an ISP.
func (t *LookupTool) Queries(isp string) int { return t.queries[isp] }

// LookupPlans returns the plans the dominant ISP offers at the address. In
// the study cities plan choices are uniform city-wide (the paper's first
// observation), so the answer depends only on the address's city — but the
// tool still charges the query against the budget, like the real portal
// would.
func (t *LookupTool) LookupPlans(addr geo.Address) ([]Plan, error) {
	cat, ok := ByCity(addr.CityID)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCity, addr.CityID)
	}
	if t.budget > 0 && t.queries[cat.ISP] >= t.budget {
		return nil, fmt.Errorf("%w: %s", ErrQueryBudget, cat.ISP)
	}
	t.queries[cat.ISP]++
	out := make([]Plan, len(cat.Plans))
	copy(out, cat.Plans)
	return out, nil
}

// SurveyResult summarizes a plan survey over sampled addresses, reproducing
// the two observations of §4.1.
type SurveyResult struct {
	CityID string
	// AddressesQueried is the number of addresses successfully queried.
	AddressesQueried int
	// UniformAcrossAddresses is true when every queried address returned
	// the identical plan set.
	UniformAcrossAddresses bool
	// Plans is the (uniform) plan set discovered.
	Plans []Plan
	// DistinctUploadSpeeds and DistinctDownloadSpeeds report the size of
	// each speed set; the paper observes uploads form a much smaller,
	// slower set.
	DistinctUploadSpeeds   []units.Mbps
	DistinctDownloadSpeeds []units.Mbps
}

// Survey queries the tool for every address and checks plan uniformity. It
// stops early (without error) if the query budget runs out, keeping
// whatever sample it collected — exactly what a polite crawler does.
func Survey(t *LookupTool, addrs []geo.Address) (*SurveyResult, error) {
	if len(addrs) == 0 {
		return nil, errors.New("plans: empty address sample")
	}
	res := &SurveyResult{CityID: addrs[0].CityID, UniformAcrossAddresses: true}
	var first []Plan
	for _, a := range addrs {
		ps, err := t.LookupPlans(a)
		if errors.Is(err, ErrQueryBudget) {
			break
		}
		if err != nil {
			return nil, err
		}
		res.AddressesQueried++
		if first == nil {
			first = ps
			continue
		}
		if !samePlans(first, ps) {
			res.UniformAcrossAddresses = false
		}
	}
	if res.AddressesQueried == 0 {
		return nil, ErrQueryBudget
	}
	res.Plans = first
	res.DistinctUploadSpeeds = distinctSpeeds(first, func(p Plan) units.Mbps { return p.Upload })
	res.DistinctDownloadSpeeds = distinctSpeeds(first, func(p Plan) units.Mbps { return p.Download })
	return res, nil
}

func samePlans(a, b []Plan) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func distinctSpeeds(ps []Plan, get func(Plan) units.Mbps) []units.Mbps {
	set := map[units.Mbps]bool{}
	for _, p := range ps {
		set[get(p)] = true
	}
	out := make([]units.Mbps, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
