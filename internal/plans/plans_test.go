package plans

import (
	"testing"

	"speedctx/internal/units"
)

func TestCityACatalogMatchesPaper(t *testing.T) {
	c := CityA()
	if len(c.Plans) != 6 {
		t.Fatalf("City A should offer 6 plans, got %d", len(c.Plans))
	}
	wantDown := []units.Mbps{25, 100, 200, 400, 800, 1200}
	wantUp := []units.Mbps{5, 5, 5, 10, 15, 35}
	for i, p := range c.Plans {
		if p.Download != wantDown[i] || p.Upload != wantUp[i] {
			t.Errorf("plan %d = %v/%v, want %v/%v", i, p.Download, p.Upload, wantDown[i], wantUp[i])
		}
	}
}

func TestUploadTiersCityA(t *testing.T) {
	tiers := CityA().UploadTiers()
	if len(tiers) != 4 {
		t.Fatalf("City A should have 4 upload tiers, got %d", len(tiers))
	}
	wantLabels := []string{"Tier 1-3", "Tier 4", "Tier 5", "Tier 6"}
	wantUploads := []units.Mbps{5, 10, 15, 35}
	wantPlanCounts := []int{3, 1, 1, 1}
	for i, tier := range tiers {
		if tier.Label() != wantLabels[i] {
			t.Errorf("tier %d label = %q, want %q", i, tier.Label(), wantLabels[i])
		}
		if tier.Upload != wantUploads[i] {
			t.Errorf("tier %d upload = %v, want %v", i, tier.Upload, wantUploads[i])
		}
		if len(tier.Plans) != wantPlanCounts[i] {
			t.Errorf("tier %d plan count = %d, want %d", i, len(tier.Plans), wantPlanCounts[i])
		}
	}
	// Downloads within Tier 1-3 ascend.
	downs := tiers[0].Downloads()
	if downs[0] != 25 || downs[1] != 100 || downs[2] != 200 {
		t.Errorf("Tier 1-3 downloads = %v", downs)
	}
}

func TestUploadTiersOtherCities(t *testing.T) {
	cases := []struct {
		cat       *Catalog
		tiers     int
		labels    []string
		maxUpload units.Mbps
		planCount int
	}{
		{CityB(), 4, []string{"Tier 1-2", "Tier 3", "Tier 4-5", "Tier 6"}, 35, 6},
		{CityC(), 4, []string{"Tier 1-3", "Tier 4-5", "Tier 6-7", "Tier 8"}, 35, 8},
		{CityD(), 3, []string{"Tier 1-2", "Tier 3-4", "Tier 5"}, 30, 5},
	}
	for _, c := range cases {
		tiers := c.cat.UploadTiers()
		if len(tiers) != c.tiers {
			t.Errorf("%s: %d tiers, want %d", c.cat.City, len(tiers), c.tiers)
			continue
		}
		for i, tier := range tiers {
			if tier.Label() != c.labels[i] {
				t.Errorf("%s tier %d label = %q, want %q", c.cat.City, i, tier.Label(), c.labels[i])
			}
		}
		if tiers[len(tiers)-1].Upload != c.maxUpload {
			t.Errorf("%s top upload = %v, want %v", c.cat.City, tiers[len(tiers)-1].Upload, c.maxUpload)
		}
		if len(c.cat.Plans) != c.planCount {
			t.Errorf("%s plan count = %d, want %d", c.cat.City, len(c.cat.Plans), c.planCount)
		}
	}
}

func TestUploadSlowerAndFewerThanDownload(t *testing.T) {
	// The paper's second observation (§4.1) must hold for every catalog.
	for _, cat := range AllCities() {
		ups := cat.UploadSpeeds()
		downs := map[units.Mbps]bool{}
		for _, p := range cat.Plans {
			downs[p.Download] = true
			if p.Upload >= p.Download {
				t.Errorf("%s %v: upload >= download", cat.ISP, p)
			}
		}
		if len(ups) >= len(downs) {
			t.Errorf("%s: %d upload speeds vs %d download speeds; uploads should be fewer",
				cat.ISP, len(ups), len(downs))
		}
	}
}

func TestTierLookups(t *testing.T) {
	c := CityA()
	if p, ok := c.PlanByTier(1); !ok || p.Download != 25 {
		t.Errorf("PlanByTier(1) = %v, %v", p, ok)
	}
	if p, ok := c.PlanByTier(6); !ok || p.Download != 1200 {
		t.Errorf("PlanByTier(6) = %v, %v", p, ok)
	}
	if _, ok := c.PlanByTier(0); ok {
		t.Error("PlanByTier(0) should fail")
	}
	if _, ok := c.PlanByTier(7); ok {
		t.Error("PlanByTier(7) should fail")
	}
	if tier := c.TierOfPlan(400, 10); tier != 4 {
		t.Errorf("TierOfPlan(400,10) = %d, want 4", tier)
	}
	if tier := c.TierOfPlan(400, 99); tier != 0 {
		t.Errorf("TierOfPlan mismatch should be 0, got %d", tier)
	}
	if c.MaxDownload() != 1200 {
		t.Errorf("MaxDownload = %v", c.MaxDownload())
	}
	if c.Tier(0) != 1 {
		t.Errorf("Tier(0) = %d", c.Tier(0))
	}
}

func TestByCity(t *testing.T) {
	for _, id := range []string{"A", "B", "C", "D"} {
		c, ok := ByCity(id)
		if !ok || c.City != id {
			t.Errorf("ByCity(%q) failed", id)
		}
	}
	if _, ok := ByCity("Z"); ok {
		t.Error("ByCity(Z) should fail")
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Name: "Gig", Download: 1200, Upload: 35}
	if got := p.String(); got != "Gig (1200/35 Mbps)" {
		t.Errorf("String = %q", got)
	}
}
