package plans

import (
	"testing"

	"speedctx/internal/geo"
	"speedctx/internal/stats"
)

func TestBuildForm477DominantISP(t *testing.T) {
	rng := stats.NewRNG(100)
	city := geo.NewCity("A", 500, rng)
	cat := CityA()
	f := BuildForm477(city, cat, rng)
	if f.CityID != "A" {
		t.Errorf("CityID = %q", f.CityID)
	}
	if got := f.DominantISP(); got != "ISP-A" {
		t.Errorf("DominantISP = %q, want ISP-A", got)
	}
	served := f.BlocksServed()
	if served["ISP-A"] < 450 {
		t.Errorf("dominant ISP serves %d/500 blocks, want >= 450", served["ISP-A"])
	}
	// Competitors exist but serve fewer blocks.
	for isp, n := range served {
		if isp == "ISP-A" {
			continue
		}
		if n >= served["ISP-A"] {
			t.Errorf("competitor %s serves %d >= dominant %d", isp, n, served["ISP-A"])
		}
	}
}

func TestForm477Determinism(t *testing.T) {
	build := func() int {
		rng := stats.NewRNG(7)
		city := geo.NewCity("B", 200, rng)
		return len(BuildForm477(city, CityB(), rng).Records)
	}
	if build() != build() {
		t.Error("Form477 generation is not deterministic")
	}
}

func TestDominantISPEmpty(t *testing.T) {
	f := &Form477{CityID: "A"}
	if got := f.DominantISP(); got != "" {
		t.Errorf("empty report dominant = %q", got)
	}
}

func TestDominantISPTieBreak(t *testing.T) {
	f := &Form477{Records: []Form477Record{
		{BlockID: "1", ISP: "zeta"},
		{BlockID: "1", ISP: "alpha"},
	}}
	if got := f.DominantISP(); got != "alpha" {
		t.Errorf("tie break = %q, want alpha", got)
	}
}
