package plans

import (
	"errors"
	"testing"

	"speedctx/internal/geo"
	"speedctx/internal/stats"
)

func sampleAddrs(t *testing.T, cityID string, n int) []geo.Address {
	t.Helper()
	rng := stats.NewRNG(200)
	city := geo.NewCity(cityID, 100, rng)
	return geo.NewAddressBase(city, rng).Sample(n)
}

func TestLookupPlansUniform(t *testing.T) {
	tool := NewLookupTool(0)
	addrs := sampleAddrs(t, "A", 50)
	first, err := tool.LookupPlans(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs[1:] {
		ps, err := tool.LookupPlans(a)
		if err != nil {
			t.Fatal(err)
		}
		if !samePlans(first, ps) {
			t.Fatal("plans differ across addresses within a city")
		}
	}
	if tool.Queries("ISP-A") != 50 {
		t.Errorf("query count = %d", tool.Queries("ISP-A"))
	}
}

func TestLookupUnknownCity(t *testing.T) {
	tool := NewLookupTool(0)
	_, err := tool.LookupPlans(geo.Address{CityID: "Z"})
	if !errors.Is(err, ErrUnknownCity) {
		t.Errorf("err = %v, want ErrUnknownCity", err)
	}
}

func TestLookupBudget(t *testing.T) {
	tool := NewLookupTool(3)
	addrs := sampleAddrs(t, "A", 5)
	for i := 0; i < 3; i++ {
		if _, err := tool.LookupPlans(addrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tool.LookupPlans(addrs[3]); !errors.Is(err, ErrQueryBudget) {
		t.Errorf("err = %v, want ErrQueryBudget", err)
	}
}

func TestSurveyObservations(t *testing.T) {
	tool := NewLookupTool(0)
	res, err := Survey(tool, sampleAddrs(t, "A", 200))
	if err != nil {
		t.Fatal(err)
	}
	if !res.UniformAcrossAddresses {
		t.Error("survey should find uniform plans (observation 1)")
	}
	if res.AddressesQueried != 200 {
		t.Errorf("queried = %d", res.AddressesQueried)
	}
	if len(res.DistinctUploadSpeeds) != 4 {
		t.Errorf("distinct uploads = %v, want 4 values", res.DistinctUploadSpeeds)
	}
	if len(res.DistinctDownloadSpeeds) != 6 {
		t.Errorf("distinct downloads = %v, want 6 values", res.DistinctDownloadSpeeds)
	}
	// Observation 2: fewer, slower upload speeds.
	if len(res.DistinctUploadSpeeds) >= len(res.DistinctDownloadSpeeds) {
		t.Error("uploads should be fewer than downloads")
	}
	maxUp := res.DistinctUploadSpeeds[len(res.DistinctUploadSpeeds)-1]
	minDown := res.DistinctDownloadSpeeds[0]
	if float64(maxUp) > 2*float64(minDown) {
		t.Errorf("uploads unexpectedly fast: max up %v vs min down %v", maxUp, minDown)
	}
}

func TestSurveyBudgetExhaustion(t *testing.T) {
	tool := NewLookupTool(10)
	res, err := Survey(tool, sampleAddrs(t, "A", 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.AddressesQueried != 10 {
		t.Errorf("queried = %d, want 10 (budget-limited)", res.AddressesQueried)
	}
	// Completely exhausted budget before the survey starts.
	res2, err := Survey(tool, sampleAddrs(t, "A", 5))
	if !errors.Is(err, ErrQueryBudget) || res2 != nil {
		t.Errorf("exhausted survey = %v, %v", res2, err)
	}
}

func TestSurveyEmpty(t *testing.T) {
	if _, err := Survey(NewLookupTool(0), nil); err == nil {
		t.Error("empty survey should error")
	}
}
