// Package plans models residential broadband subscription plans: the tiered
// <download, upload> offerings of the dominant ISP in each of the four
// cities the paper studies, the FCC Form-477-style deployment reports used
// to pick the dominant ISP, and the address-level plan-lookup tool (a
// re-implementation of the approach of Major et al. [42] that the paper
// modified).
//
// The paper's two empirical observations about plan structure (§4.1) are
// properties of these catalogs by construction, because that is exactly what
// the paper's measurement tool discovered about real ISPs:
//
//  1. Plan choices do not vary across street addresses within a city.
//  2. The set of distinct upload speeds is much smaller than the set of
//     download speeds, and upload rates are much slower.
package plans

import (
	"fmt"
	"sort"

	"speedctx/internal/units"
)

// Plan is one residential broadband subscription offering.
type Plan struct {
	// Name is the marketing name of the plan.
	Name string
	// Download is the advertised maximum download speed.
	Download units.Mbps
	// Upload is the advertised maximum upload speed.
	Upload units.Mbps
}

func (p Plan) String() string {
	return fmt.Sprintf("%s (%g/%g Mbps)", p.Name, float64(p.Download), float64(p.Upload))
}

// Catalog is the set of plans the dominant residential ISP offers in a city.
// Plans are sorted by ascending download speed; the index of a plan in Plans
// is its tier number minus one (Tier 1 = Plans[0]).
type Catalog struct {
	ISP   string // anonymized ISP name, e.g. "ISP-A"
	City  string // city identifier, "A".."D"
	State string // state identifier, matches the MBA dataset naming
	Plans []Plan
}

// Tier returns the 1-based tier number of the given plan index.
func (c *Catalog) Tier(planIdx int) int { return planIdx + 1 }

// PlanByTier returns the plan with the given 1-based tier number.
func (c *Catalog) PlanByTier(tier int) (Plan, bool) {
	if tier < 1 || tier > len(c.Plans) {
		return Plan{}, false
	}
	return c.Plans[tier-1], true
}

// UploadTier groups the plans of a catalog that share one advertised upload
// speed. This grouping is the pivot of the BST methodology: stage 1 assigns
// a measurement to an UploadTier; stage 2 selects among its Plans.
type UploadTier struct {
	// Upload is the shared advertised upload speed.
	Upload units.Mbps
	// Plans are the member plans, ascending by download speed.
	Plans []Plan
	// FirstTier and LastTier are the 1-based tier numbers covered, used
	// for the paper's "Tier 1-3" style labels.
	FirstTier, LastTier int
}

// Label renders the paper-style tier-range label, e.g. "Tier 1-3" or
// "Tier 4".
func (u UploadTier) Label() string {
	if u.FirstTier == u.LastTier {
		return fmt.Sprintf("Tier %d", u.FirstTier)
	}
	return fmt.Sprintf("Tier %d-%d", u.FirstTier, u.LastTier)
}

// Downloads returns the advertised download speeds of the member plans.
func (u UploadTier) Downloads() []units.Mbps {
	out := make([]units.Mbps, len(u.Plans))
	for i, p := range u.Plans {
		out[i] = p.Download
	}
	return out
}

// UploadTiers groups the catalog's plans by advertised upload speed,
// ascending. Tier numbering follows ascending download speed over the whole
// catalog.
func (c *Catalog) UploadTiers() []UploadTier {
	byUp := map[units.Mbps][]int{}
	for i, p := range c.Plans {
		byUp[p.Upload] = append(byUp[p.Upload], i)
	}
	ups := make([]units.Mbps, 0, len(byUp))
	for u := range byUp {
		ups = append(ups, u)
	}
	sort.Slice(ups, func(a, b int) bool { return ups[a] < ups[b] })
	out := make([]UploadTier, 0, len(ups))
	for _, u := range ups {
		idxs := byUp[u]
		sort.Ints(idxs)
		t := UploadTier{Upload: u, FirstTier: idxs[0] + 1, LastTier: idxs[len(idxs)-1] + 1}
		for _, i := range idxs {
			t.Plans = append(t.Plans, c.Plans[i])
		}
		out = append(out, t)
	}
	return out
}

// UploadSpeeds returns the distinct advertised upload speeds, ascending.
func (c *Catalog) UploadSpeeds() []units.Mbps {
	tiers := c.UploadTiers()
	out := make([]units.Mbps, len(tiers))
	for i, t := range tiers {
		out[i] = t.Upload
	}
	return out
}

// MaxDownload returns the fastest advertised download speed in the catalog.
func (c *Catalog) MaxDownload() units.Mbps {
	var m units.Mbps
	for _, p := range c.Plans {
		if p.Download > m {
			m = p.Download
		}
	}
	return m
}

// TierOfPlan returns the 1-based tier of the plan with the given advertised
// speeds, or 0 when no such plan exists.
func (c *Catalog) TierOfPlan(down, up units.Mbps) int {
	for i, p := range c.Plans {
		if p.Download == down && p.Upload == up {
			return i + 1
		}
	}
	return 0
}

// CityA returns ISP-A's catalog, matching the offerings described in §4.1 of
// the paper: three download speeds sharing a 5 Mbps upload, then 400/10,
// 800/15 and 1200/35.
func CityA() *Catalog {
	return &Catalog{
		ISP: "ISP-A", City: "A", State: "A",
		Plans: []Plan{
			{Name: "Starter 25", Download: 25, Upload: 5},
			{Name: "Essential 100", Download: 100, Upload: 5},
			{Name: "Fast 200", Download: 200, Upload: 5},
			{Name: "Superfast 400", Download: 400, Upload: 10},
			{Name: "Ultrafast 800", Download: 800, Upload: 15},
			{Name: "Gigabit Extra 1200", Download: 1200, Upload: 35},
		},
	}
}

// CityB returns ISP-B's catalog. The appendix (Table 5, Fig 16) shows four
// upload tiers grouping six plans as Tier 1-2, Tier 3, Tier 4-5, Tier 6.
func CityB() *Catalog {
	return &Catalog{
		ISP: "ISP-B", City: "B", State: "B",
		Plans: []Plan{
			{Name: "Base 50", Download: 50, Upload: 5},
			{Name: "Select 150", Download: 150, Upload: 5},
			{Name: "Preferred 300", Download: 300, Upload: 10},
			{Name: "Premier 500", Download: 500, Upload: 20},
			{Name: "Extreme 800", Download: 800, Upload: 20},
			{Name: "Gig 1200", Download: 1200, Upload: 35},
		},
	}
}

// CityC returns ISP-C's catalog. Table 6 / Fig 17 show four upload tiers
// grouping eight plans as Tier 1-3, Tier 4-5, Tier 6-7, Tier 8.
func CityC() *Catalog {
	return &Catalog{
		ISP: "ISP-C", City: "C", State: "C",
		Plans: []Plan{
			{Name: "Basic 25", Download: 25, Upload: 5},
			{Name: "Standard 75", Download: 75, Upload: 5},
			{Name: "Plus 150", Download: 150, Upload: 5},
			{Name: "Turbo 300", Download: 300, Upload: 10},
			{Name: "Turbo Max 400", Download: 400, Upload: 10},
			{Name: "Velocity 600", Download: 600, Upload: 20},
			{Name: "Velocity Pro 800", Download: 800, Upload: 20},
			{Name: "Gigablast 1200", Download: 1200, Upload: 35},
		},
	}
}

// CityD returns ISP-D's catalog. Table 7 / Fig 18 show three upload tiers
// grouping five plans as Tier 1-2, Tier 3-4, Tier 5, with slower uploads
// (~3, ~10, ~30 Mbps) than the other ISPs.
func CityD() *Catalog {
	return &Catalog{
		ISP: "ISP-D", City: "D", State: "D",
		Plans: []Plan{
			{Name: "Everyday 50", Download: 50, Upload: 3},
			{Name: "Everyday Plus 100", Download: 100, Upload: 3},
			{Name: "Advanced 200", Download: 200, Upload: 10},
			{Name: "Advanced Max 400", Download: 400, Upload: 10},
			{Name: "Gig Service 1000", Download: 1000, Upload: 30},
		},
	}
}

// AllCities returns the four catalogs in city order A-D.
func AllCities() []*Catalog {
	return []*Catalog{CityA(), CityB(), CityC(), CityD()}
}

// ByCity returns the catalog for a city identifier ("A".."D").
func ByCity(city string) (*Catalog, bool) {
	for _, c := range AllCities() {
		if c.City == city {
			return c, true
		}
	}
	return nil, false
}
