package wifi

import (
	"math"
	"testing"

	"speedctx/internal/stats"
)

func TestPHYRateMonotoneInRSSI(t *testing.T) {
	for _, band := range []Band{Band24GHz, Band5GHz} {
		prev := -1.0
		for rssi := -95.0; rssi <= -20; rssi += 1 {
			r := float64(Link{Band: band, RSSI: rssi}.PHYRate())
			if r < prev {
				t.Fatalf("%v: PHY rate decreased at RSSI %v", band, rssi)
			}
			prev = r
		}
	}
}

func TestPHYRateKnownPoints(t *testing.T) {
	// Below MCS0 (SNR < 5): legacy basic-rate fallback.
	if r := (Link{Band: Band5GHz, RSSI: -91}).PHYRate(); r != 6 {
		t.Errorf("out-of-range 5 GHz rate = %v, want 6 (legacy)", r)
	}
	if r := (Link{Band: Band24GHz, RSSI: -93}).PHYRate(); r != 5.5 {
		t.Errorf("out-of-range 2.4 GHz rate = %v, want 5.5 (legacy)", r)
	}
	// Strong 5 GHz signal reaches top VHT MCS: 86.7 x 4.5 x 2 streams.
	if r := (Link{Band: Band5GHz, RSSI: -40}).PHYRate(); math.Abs(float64(r)-86.7*4.5*2) > 1e-9 {
		t.Errorf("strong 5 GHz rate = %v, want 780.3", r)
	}
	// Strong 2.4 GHz signal caps at HT MCS7 x 2 streams = 130 Mbps.
	if r := (Link{Band: Band24GHz, RSSI: -40}).PHYRate(); r != 130 {
		t.Errorf("strong 2.4 GHz rate = %v, want 130", r)
	}
	// Single-stream, 40 MHz client: 86.7 x 2.1 x 1.
	if r := (Link{Band: Band5GHz, RSSI: -40, Streams: 1, WidthMHz: 40}).PHYRate(); math.Abs(float64(r)-86.7*2.1) > 1e-9 {
		t.Errorf("1x40MHz rate = %v, want 182.07", r)
	}
	// Weak 5 GHz: RSSI -84 -> SNR 11 -> MCS2 = 19.5 x 4.5 x 2.
	if r := (Link{Band: Band5GHz, RSSI: -84}).PHYRate(); math.Abs(float64(r)-19.5*4.5*2) > 1e-9 {
		t.Errorf("weak 5 GHz rate = %v, want 175.5", r)
	}
	// 2.4 GHz ignores an 80 MHz width request.
	if r := (Link{Band: Band24GHz, RSSI: -40, WidthMHz: 80}).PHYRate(); r != 130 {
		t.Errorf("2.4 GHz 80MHz rate = %v, want 130", r)
	}
}

func TestFiveGHzOutpaces24GHz(t *testing.T) {
	// At equal strong signal, 5 GHz must offer several times the rate —
	// the mechanism behind Figure 9b.
	r24 := Link{Band: Band24GHz, RSSI: -45}.PHYRate()
	r5 := Link{Band: Band5GHz, RSSI: -45}.PHYRate()
	if float64(r5) < 3*float64(r24) {
		t.Errorf("5 GHz %v not >= 3x 2.4 GHz %v", r5, r24)
	}
}

func TestThroughputContention(t *testing.T) {
	quiet := Link{Band: Band5GHz, RSSI: -45, Contention: 0}
	busy := Link{Band: Band5GHz, RSSI: -45, Contention: 0.5}
	if busy.Throughput() >= quiet.Throughput() {
		t.Error("contention should reduce throughput")
	}
	// RSSI -45 -> SNR 50 -> no retry penalty.
	if got, want := float64(quiet.Throughput()), 86.7*4.5*2*MACEfficiency; math.Abs(got-want) > 1e-9 {
		t.Errorf("quiet throughput = %v, want %v", got, want)
	}
	// Low SNR pays the retry penalty on top of the MCS downshift.
	weak := Link{Band: Band5GHz, RSSI: -84}
	if got, want := float64(weak.Throughput()), 19.5*4.5*2*MACEfficiency*(0.65+0.35*(11.0-10)/25); math.Abs(got-want) > 1e-9 {
		t.Errorf("weak throughput = %v, want %v", got, want)
	}
	// Contention is clamped.
	absurd := Link{Band: Band5GHz, RSSI: -45, Contention: 5}
	if absurd.Throughput() <= 0 {
		t.Error("clamped contention should leave positive throughput")
	}
}

func TestSNR(t *testing.T) {
	if got := (Link{RSSI: -65}).SNR(); got != 30 {
		t.Errorf("SNR = %v, want 30", got)
	}
}

func TestBinRSSI(t *testing.T) {
	cases := []struct {
		rssi float64
		want RSSIBin
	}{
		{-80, RSSIBelow70}, {-70, RSSI70to50}, {-60, RSSI70to50},
		{-50, RSSI50to30}, {-35, RSSI50to30}, {-30, RSSIAbove30}, {-10, RSSIAbove30},
	}
	for _, c := range cases {
		if got := BinRSSI(c.rssi); got != c.want {
			t.Errorf("BinRSSI(%v) = %v, want %v", c.rssi, got, c.want)
		}
	}
	if len(Bins()) != 4 {
		t.Error("Bins() should list 4 bins")
	}
}

func TestBinStrings(t *testing.T) {
	wants := []string{"< -70 dBm", "-70 dBm - -50 dBm", "-50 dBm - -30 dBm", ">= -30 dBm"}
	for i, b := range Bins() {
		if b.String() != wants[i] {
			t.Errorf("bin %d = %q", i, b.String())
		}
	}
	if Band24GHz.String() != "2.4 GHz" || Band5GHz.String() != "5 GHz" {
		t.Error("band strings")
	}
}

func TestLinkModelShares(t *testing.T) {
	m := DefaultLinkModel()
	rng := stats.NewRNG(42)
	n := 40000
	n24 := 0
	binCounts := map[RSSIBin]int{}
	n5 := 0
	for i := 0; i < n; i++ {
		l := m.Sample(rng)
		if l.Band == Band24GHz {
			n24++
			continue
		}
		n5++
		binCounts[BinRSSI(l.RSSI)]++
	}
	frac24 := float64(n24) / float64(n)
	if frac24 < 0.20 || frac24 > 0.26 {
		t.Errorf("2.4 GHz share = %v, want ~0.23", frac24)
	}
	// Paper's 5 GHz RSSI bin shares: 9%, 49%, 37%, 5%.
	wants := map[RSSIBin]float64{
		RSSIBelow70: 0.09, RSSI70to50: 0.49, RSSI50to30: 0.37, RSSIAbove30: 0.05,
	}
	for bin, want := range wants {
		got := float64(binCounts[bin]) / float64(n5)
		if got < want-0.06 || got > want+0.06 {
			t.Errorf("5 GHz bin %v share = %.3f, want ~%.2f", bin, got, want)
		}
	}
}

func TestLinkModelContentionRanges(t *testing.T) {
	m := DefaultLinkModel()
	rng := stats.NewRNG(43)
	var sum24, sum5 float64
	var c24, c5 int
	for i := 0; i < 20000; i++ {
		l := m.Sample(rng)
		if l.Contention < 0 || l.Contention >= 1 {
			t.Fatalf("contention out of range: %v", l.Contention)
		}
		if l.Band == Band24GHz {
			sum24 += l.Contention
			c24++
		} else {
			sum5 += l.Contention
			c5++
		}
	}
	if sum24/float64(c24) <= sum5/float64(c5) {
		t.Error("2.4 GHz should average more contention than 5 GHz")
	}
}

func TestLinkString(t *testing.T) {
	s := Link{Band: Band5GHz, RSSI: -50, Contention: 0.1}.String()
	if s == "" {
		t.Error("empty String()")
	}
}
