// Package wifi models the home wireless hop that sits between most
// crowdsourced speed-test clients and their broadband access link. The paper
// (§6.1) finds this hop — spectrum band, received signal strength, and
// channel contention — dominates the gap between measured and subscribed
// speed. The model here follows standard 802.11 engineering:
//
//	RSSI -> SNR (fixed noise floor) -> highest decodable MCS -> PHY rate
//	(scaled by channel width and spatial streams) -> effective throughput
//	(MAC efficiency x contention x retry penalty)
//
// Per-stream 20 MHz MCS rates come from the 802.11n/ac tables; client
// capability diversity (single-stream phones, 40 MHz associations) is what
// makes field WiFi so much slower than the spec-sheet maximum.
package wifi

import (
	"fmt"

	"speedctx/internal/stats"
	"speedctx/internal/units"
)

// Band is the WiFi spectrum band in use.
type Band int

const (
	// Band24GHz is the 2.4 GHz ISM band: longer range, 20 MHz channels,
	// heavy contention from neighbours and non-WiFi interferers.
	Band24GHz Band = iota
	// Band5GHz is the 5 GHz band: wider channels and higher rates, but
	// more susceptible to attenuation.
	Band5GHz
)

func (b Band) String() string {
	if b == Band24GHz {
		return "2.4 GHz"
	}
	return "5 GHz"
}

// NoiseFloorDBm is the assumed receiver noise floor.
const NoiseFloorDBm = -95.0

// mcs is one entry of the per-stream 20 MHz rate table.
type mcs struct {
	minSNR float64 // dB required to decode
	base20 float64 // Mbps per spatial stream at 20 MHz (800 ns GI)
}

// mcsTable is the 802.11n/ac per-stream base rate ladder (MCS0-9).
var mcsTable = []mcs{
	{5, 6.5}, {8, 13}, {11, 19.5}, {14, 26}, {18, 39},
	{22, 52}, {26, 58.5}, {30, 65}, {34, 78}, {37, 86.7},
}

// widthScale maps channel width to the standard rate multiplier over 20 MHz.
func widthScale(widthMHz int) float64 {
	switch widthMHz {
	case 80:
		return 4.5
	case 40:
		return 2.1
	default:
		return 1
	}
}

// MACEfficiency is the fraction of PHY rate a saturating TCP flow set
// realizes once MAC/ACK/backoff overhead is paid, on a clean channel at
// high SNR.
const MACEfficiency = 0.65

// Link is a client-to-AP WiFi link at measurement time.
type Link struct {
	Band Band
	// RSSI is the received signal strength indicator in dBm
	// (typically -90..-30).
	RSSI float64
	// Contention in [0,1) is the fraction of airtime lost to other
	// networks and stations; 0 means a quiet channel.
	Contention float64
	// Streams is the client's spatial stream count (1 or 2); 0 means 2.
	Streams int
	// WidthMHz is the association channel width (20, 40 or 80); 0 means
	// the band default (20 on 2.4 GHz, 80 on 5 GHz).
	WidthMHz int
}

// SNR returns the link's signal-to-noise ratio in dB.
func (l Link) SNR() float64 { return l.RSSI - NoiseFloorDBm }

func (l Link) streams() float64 {
	if l.Streams == 1 {
		return 1
	}
	return 2
}

func (l Link) width() int {
	if l.WidthMHz != 0 {
		return l.WidthMHz
	}
	if l.Band == Band24GHz {
		return 20
	}
	return 80
}

// PHYRate returns the negotiated PHY rate for the link's band, SNR, width
// and stream count. When the SNR cannot sustain MCS0 the client falls back
// to the legacy basic rate (802.11b 5.5 Mbps on 2.4 GHz, OFDM 6 Mbps on
// 5 GHz) — barely-connected clients still complete tests, just miserably.
func (l Link) PHYRate() units.Mbps {
	snr := l.SNR()
	maxMCS := len(mcsTable)
	width := l.width()
	if l.Band == Band24GHz {
		maxMCS = 8 // HT caps at MCS7
		if width > 40 {
			width = 20
		}
	}
	best := -1
	for i := 0; i < maxMCS; i++ {
		if snr >= mcsTable[i].minSNR {
			best = i
		} else {
			break
		}
	}
	if best < 0 {
		if l.Band == Band24GHz {
			return 5.5
		}
		return 6
	}
	return units.Mbps(mcsTable[best].base20 * widthScale(width) * l.streams())
}

// retryPenalty models rate-adaptation retries and aggregation loss at low
// SNR: links hovering near their MCS threshold burn airtime on
// retransmissions.
func (l Link) retryPenalty() float64 {
	return 0.65 + 0.35*units.Clamp((l.SNR()-10)/25, 0, 1)
}

// Throughput returns the effective TCP-visible capacity of the link after
// MAC overhead, contention and retries.
func (l Link) Throughput() units.Mbps {
	c := units.Clamp(l.Contention, 0, 0.99)
	return units.Mbps(float64(l.PHYRate()) * MACEfficiency * (1 - c) * l.retryPenalty())
}

// RSSIBin is the paper's Figure 9c binning of 5 GHz signal strength.
type RSSIBin int

const (
	RSSIBelow70 RSSIBin = iota // < -70 dBm
	RSSI70to50                 // -70 .. -50 dBm
	RSSI50to30                 // -50 .. -30 dBm
	RSSIAbove30                // >= -30 dBm
)

func (b RSSIBin) String() string {
	switch b {
	case RSSIBelow70:
		return "< -70 dBm"
	case RSSI70to50:
		return "-70 dBm - -50 dBm"
	case RSSI50to30:
		return "-50 dBm - -30 dBm"
	default:
		return ">= -30 dBm"
	}
}

// BinRSSI places an RSSI value into the paper's four bins.
func BinRSSI(rssi float64) RSSIBin {
	switch {
	case rssi < -70:
		return RSSIBelow70
	case rssi < -50:
		return RSSI70to50
	case rssi < -30:
		return RSSI50to30
	default:
		return RSSIAbove30
	}
}

// Bins lists the RSSI bins in ascending signal order.
func Bins() []RSSIBin {
	return []RSSIBin{RSSIBelow70, RSSI70to50, RSSI50to30, RSSIAbove30}
}

// LinkModel generates realistic links for the synthetic population. Shares
// are calibrated to the paper's observations: ~23% of Android tests on
// 2.4 GHz; 5 GHz RSSI bin shares of roughly 9/49/37/5% (§6.1); and client
// capability diversity (half of phones are single-stream; many associate at
// 40 MHz or narrower).
type LinkModel struct {
	// P24GHz is the probability a client associates on 2.4 GHz.
	P24GHz float64
}

// DefaultLinkModel returns the calibration used throughout the benches.
func DefaultLinkModel() LinkModel { return LinkModel{P24GHz: 0.23} }

// Sample draws a random link.
func (m LinkModel) Sample(rng *stats.RNG) Link {
	var l Link
	if rng.Bool(0.5) {
		l.Streams = 1
	} else {
		l.Streams = 2
	}
	if rng.Bool(m.P24GHz) {
		l.Band = Band24GHz
		l.WidthMHz = 20
		// 2.4 GHz propagates further: slightly better RSSI, much
		// more contention (crowded band + non-WiFi interference).
		l.RSSI = rng.TruncNormal(-58, 11, -92, -25)
		l.Contention = 0.3 + 0.6*rng.Beta(2.5, 2.5)
	} else {
		l.Band = Band5GHz
		// Calibrated so RSSI bin shares land near 9/49/37/5%.
		l.RSSI = rng.TruncNormal(-52.5, 13, -92, -20)
		switch rng.Categorical([]float64{0.65, 0.27, 0.08}) {
		case 0:
			l.WidthMHz = 80
		case 1:
			l.WidthMHz = 40
		default:
			l.WidthMHz = 20
		}
		l.Contention = 0.1 + 0.5*rng.Beta(2, 3.5)
	}
	return l
}

func (l Link) String() string {
	return fmt.Sprintf("%s RSSI=%.0f dBm %dx%dMHz contention=%.2f phy=%s",
		l.Band, l.RSSI, int(l.streams()), l.width(), l.Contention, l.PHYRate())
}
