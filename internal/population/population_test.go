package population

import (
	"testing"
	"time"

	"speedctx/internal/device"
	"speedctx/internal/netsim"
	"speedctx/internal/plans"
	"speedctx/internal/stats"
)

func TestSpreadTierWeightsSumToOne(t *testing.T) {
	for _, cat := range plans.AllCities() {
		for _, m := range []Model{OoklaModel(cat), MLabModel(cat)} {
			sum := 0.0
			for _, w := range m.TierWeights {
				if w < 0 {
					t.Fatalf("%s: negative weight", cat.City)
				}
				sum += w
			}
			if sum < 0.999 || sum > 1.001 {
				t.Errorf("%s weights sum = %v", cat.City, sum)
			}
			if len(m.TierWeights) != len(cat.Plans) {
				t.Errorf("%s weight count mismatch", cat.City)
			}
		}
	}
}

func TestOoklaTierMixSkewsLow(t *testing.T) {
	cat := plans.CityA()
	m := OoklaModel(cat)
	rng := stats.NewRNG(1)
	groupCounts := make([]int, 4)
	tiers := cat.UploadTiers()
	n := 20000
	for i := 0; i < n; i++ {
		s := m.NewSubscriber(i, rng)
		for gi, tier := range tiers {
			if s.Tier >= tier.FirstTier && s.Tier <= tier.LastTier {
				groupCounts[gi]++
			}
		}
	}
	lowShare := float64(groupCounts[0]) / float64(n)
	if lowShare < 0.38 || lowShare > 0.50 {
		t.Errorf("lowest tier-group share = %v, want ~0.44", lowShare)
	}
	topShare := float64(groupCounts[3]) / float64(n)
	if topShare < 0.19 || topShare > 0.31 {
		t.Errorf("top tier share = %v, want ~0.25", topShare)
	}
}

func TestMLabSkewsLowerThanOokla(t *testing.T) {
	cat := plans.CityA()
	rng := stats.NewRNG(2)
	low := func(m Model) float64 {
		c := 0
		for i := 0; i < 10000; i++ {
			if m.NewSubscriber(i, rng).Tier <= 3 {
				c++
			}
		}
		return float64(c) / 10000
	}
	if lo, lm := low(OoklaModel(cat)), low(MLabModel(cat)); lm <= lo {
		t.Errorf("M-Lab low-tier share %v should exceed Ookla's %v", lm, lo)
	}
}

func TestMBAModelWiredNoTier1(t *testing.T) {
	m := MBAModel(plans.CityA())
	rng := stats.NewRNG(3)
	for i := 0; i < 5000; i++ {
		s := m.NewSubscriber(i, rng)
		if s.Platform != device.DesktopEthernet {
			t.Fatal("MBA units must be wired")
		}
		if s.Tier == 1 {
			t.Fatal("MBA State-A panel must not include the 25 Mbps plan")
		}
	}
	// Other states keep their full plan range.
	mB := MBAModel(plans.CityB())
	saw1 := false
	for i := 0; i < 5000; i++ {
		if mB.NewSubscriber(i, rng).Tier == 1 {
			saw1 = true
			break
		}
	}
	if !saw1 {
		t.Error("MBA State-B should include tier 1")
	}
}

func TestNativeAppsMostlyWiFi(t *testing.T) {
	// ~97% of native-app tests are over WiFi in the paper.
	m := OoklaModel(plans.CityA())
	rng := stats.NewRNG(4)
	native, wired := 0, 0
	for i := 0; i < 30000; i++ {
		s := m.NewSubscriber(i, rng)
		if !s.Platform.Native() {
			continue
		}
		native++
		if s.Wired() {
			wired++
		}
	}
	wifiShare := 1 - float64(wired)/float64(native)
	if wifiShare < 0.93 || wifiShare > 0.99 {
		t.Errorf("native WiFi share = %v, want ~0.95-0.97", wifiShare)
	}
}

func TestSubscriberFields(t *testing.T) {
	m := OoklaModel(plans.CityA())
	rng := stats.NewRNG(5)
	sawAndroidMem := false
	for i := 0; i < 2000; i++ {
		s := m.NewSubscriber(i, rng)
		if s.TestsPerYear < 1 {
			t.Fatalf("TestsPerYear = %d", s.TestsPerYear)
		}
		if s.Plan.Download == 0 {
			t.Fatal("empty plan")
		}
		if s.Tier < 1 || s.Tier > 6 {
			t.Fatalf("tier = %d", s.Tier)
		}
		if s.Platform == device.Android && s.KernelMemMB > 0 {
			sawAndroidMem = true
		}
	}
	if !sawAndroidMem {
		t.Error("no Android subscriber with kernel memory metadata")
	}
}

func TestHeavyTailedTestCounts(t *testing.T) {
	m := OoklaModel(plans.CityA())
	rng := stats.NewRNG(6)
	ge5 := 0
	n := 10000
	for i := 0; i < n; i++ {
		if m.NewSubscriber(i, rng).TestsPerYear >= 5 {
			ge5++
		}
	}
	share := float64(ge5) / float64(n)
	// Paper: 23k of 85k users issued >= 5 tests (~27%).
	if share < 0.1 || share > 0.45 {
		t.Errorf(">=5-tests user share = %v, want ~0.27", share)
	}
}

func TestSampleTestTimeDistribution(t *testing.T) {
	rng := stats.NewRNG(7)
	counts := make([]int, 4)
	n := 40000
	for i := 0; i < n; i++ {
		ts := SampleTestTime(rng)
		if ts.Year() != 2021 {
			t.Fatalf("year = %d", ts.Year())
		}
		counts[HourBin(ts)]++
	}
	wants := []float64{0.10, 0.22, 0.35, 0.33}
	for i, want := range wants {
		got := float64(counts[i]) / float64(n)
		if got < want-0.03 || got > want+0.03 {
			t.Errorf("bin %s share = %v, want ~%v", HourBinLabel(i), got, want)
		}
	}
}

func TestHourBinLabels(t *testing.T) {
	wants := []string{"00-06", "06-12", "12-18", "18-00"}
	for i, w := range wants {
		if HourBinLabel(i) != w {
			t.Errorf("label %d = %q", i, HourBinLabel(i))
		}
	}
	if HourBinLabel(9) != "?" {
		t.Error("out-of-range label")
	}
	if HourBin(time.Date(2021, 5, 1, 13, 0, 0, 0, time.UTC)) != 2 {
		t.Error("HourBin(13h) != 2")
	}
}

func TestTestScenarioWiFiJitter(t *testing.T) {
	m := OoklaModel(plans.CityA())
	rng := stats.NewRNG(8)
	var s Subscriber
	for {
		s = m.NewSubscriber(0, rng)
		if s.Platform == device.Android {
			break
		}
	}
	ts := time.Date(2021, 3, 4, 14, 0, 0, 0, time.UTC)
	sc1 := m.TestScenario(&s, netsim.VendorOokla, ts, rng)
	sc2 := m.TestScenario(&s, netsim.VendorOokla, ts, rng)
	if sc1.Home.Ethernet {
		t.Fatal("Android scenario should be WiFi")
	}
	if sc1.Home.WiFi.RSSI == sc2.Home.WiFi.RSSI {
		t.Error("per-test RSSI jitter missing")
	}
	if sc1.Hour != 14 {
		t.Errorf("hour = %d", sc1.Hour)
	}
	if sc1.Device.KernelMemMB <= 0 || sc1.Device.KernelMemMB > s.KernelMemMB {
		t.Errorf("per-test kernel memory %d vs nominal %d", sc1.Device.KernelMemMB, s.KernelMemMB)
	}
	if sc1.Home.WiFi.Contention > 0.95 {
		t.Error("contention cap exceeded")
	}
}

func TestTestScenarioWired(t *testing.T) {
	m := MBAModel(plans.CityA())
	rng := stats.NewRNG(9)
	s := m.NewSubscriber(0, rng)
	sc := m.TestScenario(&s, netsim.VendorOokla, time.Now(), rng)
	if !sc.Home.Ethernet {
		t.Error("MBA scenario should be wired")
	}
	if sc.Device.KernelMemMB != 0 {
		t.Error("wired unit should not report kernel memory")
	}
}

func TestEthernetUsersSkewPremium(t *testing.T) {
	// Table 3's Desktop Ethernet-App column concentrates on the top
	// tier; the model must reflect that.
	m := OoklaModel(plans.CityA())
	rng := stats.NewRNG(21)
	ethTop, ethTotal := 0, 0
	wifiTop, wifiTotal := 0, 0
	for i := 0; i < 60000; i++ {
		s := m.NewSubscriber(i, rng)
		if s.Platform == device.DesktopEthernet {
			ethTotal++
			if s.Tier == 6 {
				ethTop++
			}
		} else if s.Platform == device.IOS {
			wifiTotal++
			if s.Tier == 6 {
				wifiTop++
			}
		}
	}
	if ethTotal < 500 || wifiTotal < 500 {
		t.Fatalf("samples too small: %d / %d", ethTotal, wifiTotal)
	}
	ethShare := float64(ethTop) / float64(ethTotal)
	wifiShare := float64(wifiTop) / float64(wifiTotal)
	if ethShare < 0.3 || ethShare > 0.5 {
		t.Errorf("Ethernet top-tier share = %v, want ~0.4", ethShare)
	}
	if ethShare <= wifiShare {
		t.Errorf("Ethernet top-tier share %v should exceed iOS share %v", ethShare, wifiShare)
	}
}

func TestWithOnlyPlatform(t *testing.T) {
	m := OoklaModel(plans.CityA()).WithOnlyPlatform(device.Android)
	rng := stats.NewRNG(22)
	for i := 0; i < 1000; i++ {
		if s := m.NewSubscriber(i, rng); s.Platform != device.Android {
			t.Fatalf("platform = %v", s.Platform)
		}
	}
}
