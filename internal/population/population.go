// Package population synthesizes the subscriber base behind the
// crowdsourced datasets: who subscribes to which plan, what device and home
// network they test from, how often and at what time of day they test.
//
// The mixes are calibrated to the shares the paper reports: roughly half of
// tests originate from the lowest subscription tier group; ~97% of native
// app tests run over WiFi; M-Lab's user base skews toward lower tiers; test
// volume is lowest overnight and highest in the afternoon and evening
// (Fig 11), yet time of day barely affects performance (§6.2).
package population

import (
	"time"

	"speedctx/internal/device"
	"speedctx/internal/netsim"
	"speedctx/internal/plans"
	"speedctx/internal/stats"
	"speedctx/internal/wifi"
)

// Subscriber is one household/user of the dominant ISP.
type Subscriber struct {
	ID   int
	City string
	// Tier is the 1-based subscription tier in the city catalog — the
	// ground truth BST tries to recover.
	Tier int
	Plan plans.Plan
	// Access is the household's provisioned access link (stable across
	// the user's tests).
	Access netsim.AccessLink
	// Platform is the user's measurement platform.
	Platform device.Platform
	// KernelMemMB is the device's nominal kernel memory (Android/iOS).
	KernelMemMB int
	// BaseWiFi is the client's usual link to the home AP; per-test
	// samples jitter around it. Unused for wired platforms.
	BaseWiFi wifi.Link
	// WebWired marks web-platform users testing from a wired desktop.
	// The dataset cannot see this (web tests carry no access metadata),
	// but the performance difference is real.
	WebWired bool
	// TestsPerYear is how many speed tests the user runs in the study
	// year.
	TestsPerYear int
}

// Wired reports whether the subscriber tests over Ethernet.
func (s *Subscriber) Wired() bool { return s.Platform.Wired() || s.WebWired }

// Model holds the population mixes for one vendor's user base in one city.
type Model struct {
	Catalog *plans.Catalog
	// TierWeights is indexed by tier-1; it is the probability a user
	// subscribes to each plan.
	TierWeights []float64
	// PlatformWeights is indexed by device.Platform.
	PlatformWeights [5]float64
	// AccessModel provisions household links.
	AccessModel netsim.AccessModel
	// LinkModel draws WiFi links.
	LinkModel wifi.LinkModel
	// MemoryModel draws Android kernel memory.
	MemoryModel device.MemoryModel
	// MeanTestsPerYear controls the heavy-tailed per-user test count.
	MeanTestsPerYear float64
	// EthernetTierWeights, when non-nil, replaces TierWeights for
	// wired-desktop users (Table 3: they skew to premium tiers).
	EthernetTierWeights []float64
}

// OoklaModel returns the Ookla user-base calibration for a city catalog.
// Tier weights follow Table 3's tier-group shares (~44% in the lowest
// group, ~25% on the top tier); the platform mix follows the City-A
// measurement counts (Web ~48%, iOS ~35%, Android ~9%, desktop the rest).
func OoklaModel(cat *plans.Catalog) Model {
	return Model{
		Catalog:          cat,
		TierWeights:      spreadTierWeights(cat, []float64{0.44, 0.15, 0.16, 0.25}),
		PlatformWeights:  [5]float64{0.09, 0.35, 0.05, 0.025, 0.485},
		AccessModel:      netsim.DefaultAccessModel(),
		LinkModel:        wifi.DefaultLinkModel(),
		MemoryModel:      device.DefaultMemoryModel(),
		MeanTestsPerYear: 6,
		// Wired-desktop testers skew premium (Table 3's Desktop
		// Ethernet-App column: ~40% on the top tier).
		EthernetTierWeights: spreadTierWeights(cat, []float64{0.20, 0.14, 0.26, 0.40}),
	}
}

// WithOnlyPlatform restricts the model's population to a single platform —
// used for the paper's Android-only radio analyses (Figs 9b-d, 10).
func (m Model) WithOnlyPlatform(p device.Platform) Model {
	m.PlatformWeights = [5]float64{}
	m.PlatformWeights[p] = 1
	return m
}

// MLabModel returns the M-Lab user-base calibration: all tests are
// web-initiated and the tier mix skews lower (Table 3's NDT row: ~62% in
// the lowest group, ~8% on the top tier).
func MLabModel(cat *plans.Catalog) Model {
	return Model{
		Catalog:          cat,
		TierWeights:      spreadTierWeights(cat, []float64{0.62, 0.15, 0.14, 0.09}),
		PlatformWeights:  [5]float64{0, 0, 0, 0, 1},
		AccessModel:      netsim.DefaultAccessModel(),
		LinkModel:        wifi.DefaultLinkModel(),
		MemoryModel:      device.DefaultMemoryModel(),
		MeanTestsPerYear: 3,
	}
}

// MBAModel returns the Measuring Broadband America panel calibration: wired
// measurement units attached to cable modems, with no lowest-tier (25 Mbps)
// units in State A — the paper notes the MBA panel lacks that plan.
func MBAModel(cat *plans.Catalog) Model {
	groupWeights := []float64{0.60, 0.16, 0.10, 0.14}
	m := Model{
		Catalog:          cat,
		TierWeights:      spreadTierWeights(cat, groupWeights),
		PlatformWeights:  [5]float64{0, 0, 0, 1, 0},
		AccessModel:      netsim.DefaultAccessModel(),
		LinkModel:        wifi.DefaultLinkModel(),
		MemoryModel:      device.DefaultMemoryModel(),
		MeanTestsPerYear: 1200, // units test multiple times per day
	}
	if cat.City == "A" {
		// No 25/5 plan in the MBA State-A panel (§4.3).
		m.TierWeights[0] = 0
	}
	return m
}

// spreadTierWeights expands per-upload-tier-group weights into per-plan
// weights: within a group, lower download plans are more popular.
func spreadTierWeights(cat *plans.Catalog, groupWeights []float64) []float64 {
	weights := make([]float64, len(cat.Plans))
	tiers := cat.UploadTiers()
	// Cities differ in upload-tier group count; renormalize the group
	// weights over the groups that exist.
	gws := make([]float64, len(tiers))
	gsum := 0.0
	for gi := range tiers {
		if gi < len(groupWeights) {
			gws[gi] = groupWeights[gi]
		} else {
			gws[gi] = 0.25
		}
		gsum += gws[gi]
	}
	for gi := range gws {
		gws[gi] /= gsum
	}
	for gi, tier := range tiers {
		gw := gws[gi]
		n := len(tier.Plans)
		// Within a group, mid plans are the most popular: entry plans
		// are budget niches, top plans premium niches.
		pattern := []float64{0.8, 1.2, 0.8, 0.6, 0.5}
		denom := 0.0
		for r := 0; r < n; r++ {
			denom += pattern[r%len(pattern)]
		}
		for r := 0; r < n; r++ {
			planIdx := tier.FirstTier - 1 + r
			weights[planIdx] = gw * pattern[r%len(pattern)] / denom
		}
	}
	return weights
}

// NewSubscriber draws one subscriber from the model.
func (m Model) NewSubscriber(id int, rng *stats.RNG) Subscriber {
	platform := device.Platform(rng.Categorical(m.PlatformWeights[:]))
	tierWeights := m.TierWeights
	if platform == device.DesktopEthernet && m.EthernetTierWeights != nil {
		tierWeights = m.EthernetTierWeights
	}
	tierIdx := rng.Categorical(tierWeights)
	plan := m.Catalog.Plans[tierIdx]

	s := Subscriber{
		ID:       id,
		City:     m.Catalog.City,
		Tier:     tierIdx + 1,
		Plan:     plan,
		Access:   m.AccessModel.Provision(plan, rng),
		Platform: platform,
	}
	if platform == device.Android || platform == device.IOS {
		s.KernelMemMB = m.MemoryModel.Sample(rng)
	}
	if platform == device.Web {
		// A good share of browser tests run from wired desktops; the
		// dataset cannot tell, but the speeds reflect it.
		s.WebWired = rng.Bool(0.35)
	}
	if !s.Wired() {
		s.BaseWiFi = m.LinkModel.Sample(rng)
	}
	// Heavy-tailed test counts: most users test once or twice, a few
	// test dozens of times (the paper's 23k of 85k users with >= 5
	// tests).
	n := int(rng.Pareto(1, 1.25))
	if n < 1 {
		n = 1
	}
	if float64(n) > m.MeanTestsPerYear*5 {
		n = int(m.MeanTestsPerYear * 5)
	}
	s.TestsPerYear = n
	return s
}

// hourBinWeights are the shares of tests per 6-hour local-time bin
// (00-06, 06-12, 12-18, 18-24), calibrated to Figure 11.
var hourBinWeights = []float64{0.10, 0.22, 0.35, 0.33}

// SampleTestTime draws a local timestamp in the study year (2021) with the
// diurnal volume profile of Figure 11.
func SampleTestTime(rng *stats.RNG) time.Time {
	bin := rng.Categorical(hourBinWeights)
	hour := bin*6 + rng.Intn(6)
	dayOfYear := rng.Intn(365)
	base := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	return base.AddDate(0, 0, dayOfYear).
		Add(time.Duration(hour) * time.Hour).
		Add(time.Duration(rng.Intn(3600)) * time.Second)
}

// HourBin returns the paper's 6-hour bin index (0: 00-06 ... 3: 18-24) for
// a timestamp.
func HourBin(ts time.Time) int { return ts.Hour() / 6 }

// HourBinLabel renders the paper's bin labels.
func HourBinLabel(bin int) string {
	labels := []string{"00-06", "06-12", "12-18", "18-00"}
	if bin < 0 || bin >= len(labels) {
		return "?"
	}
	return labels[bin]
}

// TestScenario builds the netsim scenario for one of the subscriber's
// tests: per-test WiFi jitter around the base link, per-test kernel memory
// availability, and the vendor methodology.
func (m Model) TestScenario(s *Subscriber, vendor netsim.Vendor, ts time.Time, rng *stats.RNG) netsim.Scenario {
	sc := netsim.Scenario{
		Plan:   s.Plan,
		Access: s.Access,
		Vendor: vendor,
		Hour:   ts.Hour(),
	}
	if s.Wired() {
		sc.Home = netsim.HomeLink{Ethernet: true}
	} else {
		link := s.BaseWiFi
		link.RSSI += rng.Normal(0, 3.5)
		// Contention varies substantially test to test with channel
		// occupancy — the main source of download-speed inconsistency
		// the paper measures in Fig 2.
		link.Contention *= rng.TruncNormal(1, 0.4, 0.25, 2.2)
		// Congestion events: some tests run while the channel is
		// hammered (neighbour backups, streaming bursts, microwave on
		// 2.4 GHz). These produce the very-low-speed clusters the
		// paper observes even in low subscription tiers.
		pCongested := 0.12
		if link.Band == wifi.Band24GHz {
			pCongested = 0.25
		}
		if rng.Bool(pCongested) {
			if c := rng.Uniform(0.65, 0.95); c > link.Contention {
				link.Contention = c
			}
		}
		if link.Contention > 0.95 {
			link.Contention = 0.95
		}
		sc.Home = netsim.HomeLink{WiFi: link}
	}
	mem := s.KernelMemMB
	if mem > 0 {
		// Available kernel memory fluctuates with device load.
		mem = int(float64(mem) * rng.TruncNormal(0.92, 0.08, 0.6, 1))
	}
	sc.Device = device.Device{Platform: s.Platform, KernelMemMB: mem}
	return sc
}
