// Command speedtestd runs the shaped loopback speed-test server and,
// optionally, the measurement-ingest service.
//
//	speedtestd -addr 127.0.0.1:8099 -rate 200 -perconn 40
//	speedtestd -ingest 127.0.0.1:8102 -ingest-cities A,B -ingest-dir ./ingest
//
// rate and perconn are in Mbps; zero means unlimited. The per-connection
// cap emulates the per-flow ceiling that loss and fair queueing impose on
// real wide-area paths, which is what makes single-connection tests (M-Lab
// NDT) under-report against multi-connection tests (Ookla).
//
// With -ingest, the daemon also serves the contextualization API
// (DESIGN.md §11): it fits each configured city's BST model at startup,
// classifies every POSTed <download, upload> result against it, and
// persists accepted rows as sorted .sxc segments under -ingest-dir,
// compacted into one canonical snapshot at shutdown (quadkey-clustered
// and zone-mapped with -ingest-cluster-zoom). The same server
// serves GET /v1/tiles — contextualized per-quadkey aggregates folded
// live from the sealed segments (DESIGN.md §13; -tile-zoom, -tile-par,
// -tile-cache).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"speedctx/internal/core"
	"speedctx/internal/experiments"
	"speedctx/internal/ingest"
	"speedctx/internal/ndt7"
	"speedctx/internal/speedtest"
	"speedctx/internal/tilequery"
)

// Addrs reports the daemon's bound listen addresses; empty means the
// corresponding server was not enabled.
type Addrs struct {
	Raw    string
	NDT7   string
	Ingest string
}

// started is called once every enabled server is listening. Test seam: the
// smoke test swaps it to learn the ephemeral ports.
var started = func(Addrs) {}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "speedtestd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("speedtestd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8099", "listen address (raw-TCP protocol)")
	ndt7Addr := fs.String("ndt7", "", "also serve the NDT7 WebSocket protocol on this address (e.g. 127.0.0.1:8100)")
	rateMbps := fs.Float64("rate", 200, "total shaped rate in Mbps (0 = unlimited)")
	perConnMbps := fs.Float64("perconn", 0, "per-connection rate cap in Mbps (0 = unlimited)")

	ingestAddr := fs.String("ingest", "", "also serve the measurement-ingest API on this address (e.g. 127.0.0.1:8102)")
	ingestCities := fs.String("ingest-cities", "A,B,C,D", "comma-separated city models to load for ingest classification")
	ingestDir := fs.String("ingest-dir", "speedctx-ingest", "segment directory for ingested rows (.sxc)")
	ingestScale := fs.Float64("ingest-scale", 0.02, "dataset scale for the startup model fits")
	ingestSeed := fs.Int64("ingest-seed", 2021, "generation seed for the startup model fits")
	ingestFast := fs.Bool("ingest-fast", true, "fit the startup models with the fast paths (DESIGN.md §8)")
	ingestBatch := fs.Int("ingest-batch-rows", 0, "rows per sealed segment (0 = default 65536)")
	ingestAge := fs.Duration("ingest-age", 0, "max age of a partial batch before sealing (0 = default 2s)")
	ingestShards := fs.Int("ingest-shards", 0, "ingest queue shards (0 = default 4)")
	ingestDepth := fs.Int("ingest-depth", 0, "per-shard queue depth in rows (0 = default 4096)")
	ingestCompact := fs.Bool("ingest-compact", true, "compact segments into one canonical snapshot at shutdown")
	ingestClusterZoom := fs.Int("ingest-cluster-zoom", 0, "cluster the shutdown compaction by quadkey at this zoom into a zoned v3 snapshot, so bbox tile queries over it can skip row groups by zone map (DESIGN.md §15); 0 keeps the canonical v2 order")
	ingestScanBatch := fs.Int("ingest-scan-batch", 0, "rows per streamed segment-scan batch for tile folds, sketch priming and compaction — bounds scan memory, never changes output (0 = default)")
	refitRows := fs.Int("ingest-refit-rows", 0, "refit a city's model once this many sealed rows await folding (0 = no row trigger)")
	refitAge := fs.Duration("ingest-refit-age", 0, "refit a city's model once it is this old and sealed rows await folding (0 = no age trigger)")
	tileZoom := fs.Int("tile-zoom", 0, "base aggregation zoom for /v1/tiles (0 = default 16)")
	tilePar := fs.Int("tile-par", 0, "segment-fold parallelism for /v1/tiles: 0 = all CPUs, 1 = serial (responses are identical at every setting)")
	tileCache := fs.Int("tile-cache", 0, "tile result cache capacity in tiles (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logf := log.New(stderr, "", log.LstdFlags).Printf
	var bound Addrs

	if *ndt7Addr != "" {
		perConn := *perConnMbps
		if perConn <= 0 {
			perConn = *rateMbps
		}
		ns, err := ndt7.NewServer(*ndt7Addr, ndt7.ServerConfig{Rate: perConn * 1e6 / 8})
		if err != nil {
			return fmt.Errorf("ndt7: %w", err)
		}
		defer ns.Close()
		bound.NDT7 = ns.Addr()
		logf("ndt7 listening on %s (per-connection %.0f Mbps)", ns.Addr(), perConn)
	}

	var (
		pipe      *ingest.Pipeline
		ingestSrv *ingest.Server
		httpSrv   *http.Server
		httpErr   = make(chan error, 1)
	)
	if *ingestAddr != "" {
		models, specs, fitCfg, err := loadIngestModels(*ingestCities, *ingestScale, *ingestSeed, *ingestFast, logf)
		if err != nil {
			return err
		}
		pipe, err = ingest.NewPipeline(ingest.PipelineConfig{
			Dir:           *ingestDir,
			BatchRows:     *ingestBatch,
			MaxBatchAge:   *ingestAge,
			QueueShards:   *ingestShards,
			QueueDepth:    *ingestDepth,
			Sketches:      specs,
			ScanBatchRows: *ingestScanBatch,
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", *ingestAddr)
		if err != nil {
			pipe.Close()
			return fmt.Errorf("ingest: listen: %w", err)
		}
		ingestSrv = ingest.NewServer(pipe, models, ingest.ServerConfig{
			RefitRows:      *refitRows,
			RefitAge:       *refitAge,
			FitConfig:      fitCfg,
			Logf:           logf,
			Tiles:          tilequery.Config{Zoom: *tileZoom, Parallelism: *tilePar},
			TileCacheTiles: *tileCache,
		})
		httpSrv = &http.Server{Handler: ingestSrv.Handler()}
		bound.Ingest = ln.Addr().String()
		logf("ingest listening on %s (%d city models, dir %s)", bound.Ingest, len(models), *ingestDir)
		go func() { httpErr <- httpSrv.Serve(ln) }()
	}

	srv, err := speedtest.NewServer(*addr, speedtest.ServerConfig{
		TotalRate:   *rateMbps * 1e6 / 8,
		PerConnRate: *perConnMbps * 1e6 / 8,
		Logf:        logf,
	})
	if err != nil {
		return err
	}
	bound.Raw = srv.Addr()
	logf("speedtestd listening on %s (total %.0f Mbps, per-conn %.0f Mbps)",
		srv.Addr(), *rateMbps, *perConnMbps)
	started(bound)

	select {
	case <-ctx.Done():
	case err := <-httpErr:
		// The ingest listener failing is fatal; tear everything down.
		srv.Close()
		if pipe != nil {
			pipe.Close()
		}
		return fmt.Errorf("ingest: serve: %w", err)
	}

	firstErr := srv.Close()
	if httpSrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := httpSrv.Shutdown(sctx); err != nil && firstErr == nil {
			firstErr = err
		}
		cancel()
	}
	if ingestSrv != nil {
		ingestSrv.Close()
	}
	if pipe != nil {
		if err := pipe.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if *ingestCompact {
			out, err := ingest.CompactWith(*ingestDir, ingest.CompactOptions{
				BatchRows:   *ingestScanBatch,
				ClusterZoom: *ingestClusterZoom,
			})
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				logf("ingest snapshot compacted to %s", out)
			}
		}
	}
	return firstErr
}

// loadIngestModels fits (or loads via the suite's caches) one serving
// model per requested city: the startup classifier plus the base tier
// sketches live refresh refits from, and the matching per-city sketch
// specs the pipeline stamps into sealed segments.
func loadIngestModels(cities string, scale float64, seed int64, fast bool, logf func(string, ...any)) (map[string]*ingest.CityModel, map[string]ingest.CitySketchSpec, core.Config, error) {
	s := experiments.NewSuite(scale, seed)
	s.FastFit = fast
	models := map[string]*ingest.CityModel{}
	specs := map[string]ingest.CitySketchSpec{}
	for _, id := range strings.Split(cities, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		t0 := time.Now()
		cl, base, spec, err := s.CityServingModel(id)
		if err != nil {
			return nil, nil, core.Config{}, fmt.Errorf("ingest: city %s model: %w", id, err)
		}
		models[id] = &ingest.CityModel{Classifier: cl, Base: base}
		specs[id] = ingest.CitySketchSpec{Spec: spec, Tiers: len(base.Downloads)}
		logf("ingest model for city %s ready in %v", id, time.Since(t0).Round(time.Millisecond))
	}
	if len(models) == 0 {
		return nil, nil, core.Config{}, fmt.Errorf("ingest: no cities configured")
	}
	return models, specs, s.BSTConfig(), nil
}
