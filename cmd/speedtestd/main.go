// Command speedtestd runs the shaped loopback speed-test server.
//
//	speedtestd -addr 127.0.0.1:8099 -rate 200 -perconn 40
//
// rate and perconn are in Mbps; zero means unlimited. The per-connection
// cap emulates the per-flow ceiling that loss and fair queueing impose on
// real wide-area paths, which is what makes single-connection tests (M-Lab
// NDT) under-report against multi-connection tests (Ookla).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"speedctx/internal/ndt7"
	"speedctx/internal/speedtest"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8099", "listen address (raw-TCP protocol)")
	ndt7Addr := flag.String("ndt7", "", "also serve the NDT7 WebSocket protocol on this address (e.g. 127.0.0.1:8100)")
	rateMbps := flag.Float64("rate", 200, "total shaped rate in Mbps (0 = unlimited)")
	perConnMbps := flag.Float64("perconn", 0, "per-connection rate cap in Mbps (0 = unlimited)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *ndt7Addr != "" {
		perConn := *perConnMbps
		if perConn <= 0 {
			perConn = *rateMbps
		}
		ns, err := ndt7.NewServer(*ndt7Addr, ndt7.ServerConfig{Rate: perConn * 1e6 / 8})
		if err != nil {
			fmt.Fprintln(os.Stderr, "speedtestd: ndt7:", err)
			os.Exit(1)
		}
		defer ns.Close()
		log.Printf("ndt7 listening on %s (per-connection %.0f Mbps)", ns.Addr(), perConn)
	}

	cfg := speedtest.ServerConfig{
		TotalRate:   *rateMbps * 1e6 / 8,
		PerConnRate: *perConnMbps * 1e6 / 8,
	}
	if err := speedtest.ListenAndServeUntil(ctx, *addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "speedtestd:", err)
		os.Exit(1)
	}
}
