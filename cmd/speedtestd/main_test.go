package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"speedctx/internal/dataset"
	"speedctx/internal/ingest"
	"speedctx/internal/ndt7"
	"speedctx/internal/speedtest"
)

// startDaemon runs the daemon on ephemeral ports with the given extra args
// and returns the bound addresses plus a shutdown func that cancels the
// run context and reports run's error.
func startDaemon(t *testing.T, extra ...string) (Addrs, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan Addrs, 1)
	oldStarted := started
	started = func(a Addrs) { addrCh <- a }
	t.Cleanup(func() { started = oldStarted })

	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, args, io.Discard) }()

	select {
	case a := <-addrCh:
		return a, func() error {
			cancel()
			select {
			case err := <-errCh:
				return err
			case <-time.After(10 * time.Second):
				t.Fatal("daemon did not shut down after context cancel")
				return nil
			}
		}
	case err := <-errCh:
		cancel()
		t.Fatalf("daemon exited before start: %v", err)
		return Addrs{}, nil
	case <-time.After(30 * time.Second):
		cancel()
		t.Fatal("daemon never reported started")
		return Addrs{}, nil
	}
}

// TestDaemonSmoke boots the full daemon on ephemeral ports, runs one
// raw-TCP test and one NDT7 test against it, and checks context cancel
// shuts it down cleanly.
func TestDaemonSmoke(t *testing.T) {
	addrs, shutdown := startDaemon(t,
		"-ndt7", "127.0.0.1:0",
		"-rate", "80", "-perconn", "40",
	)
	if addrs.Raw == "" || addrs.NDT7 == "" {
		t.Fatalf("missing bound addresses: %+v", addrs)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := speedtest.Ping(ctx, addrs.Raw); err != nil {
		t.Fatalf("ping: %v", err)
	}
	spec := speedtest.ClientSpec{Connections: 2, Duration: 400 * time.Millisecond}
	res, err := speedtest.Download(ctx, addrs.Raw, spec)
	if err != nil {
		t.Fatalf("raw download: %v", err)
	}
	if res.Bytes <= 0 || res.Throughput <= 0 {
		t.Fatalf("raw download measured nothing: %+v", res)
	}

	nres, err := ndt7.Download(ctx, addrs.NDT7, 400*time.Millisecond)
	if err != nil {
		t.Fatalf("ndt7 download: %v", err)
	}
	if nres.Bytes <= 0 {
		t.Fatalf("ndt7 download measured nothing: %+v", nres)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestDaemonIngestMode boots the daemon with -ingest, posts results, and
// checks shutdown seals and compacts the snapshot.
func TestDaemonIngestMode(t *testing.T) {
	dir := t.TempDir()
	addrs, shutdown := startDaemon(t,
		"-ingest", "127.0.0.1:0",
		"-ingest-cities", "A",
		"-ingest-dir", dir,
		"-ingest-scale", "0.001",
	)
	if addrs.Ingest == "" {
		t.Fatal("ingest address not bound")
	}
	base := "http://" + addrs.Ingest

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	row := dataset.IngestRow{
		TestID: 1, UserID: 2, City: "A", ISP: "ISP-A",
		Timestamp:    time.Unix(1609459200, 0).UTC(),
		DownloadMbps: 412.5, UploadMbps: 18.2, LatencyMs: 11.3,
	}
	for i := 0; i < 5; i++ {
		row.TestID = i
		resp, err := http.Post(base+"/v1/ingest", "application/json",
			bytes.NewReader(ingest.AppendSubmission(nil, &row)))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest POST = %d: %s", resp.StatusCode, body)
		}
		var ack struct {
			Tier       int     `json:"tier"`
			UploadTier int     `json:"upload_tier"`
			Confidence float64 `json:"confidence"`
		}
		if err := json.Unmarshal(body, &ack); err != nil {
			t.Fatalf("ack: %v: %s", err, body)
		}
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	data, err := os.ReadFile(filepath.Join(dir, ingest.CompactedName))
	if err != nil {
		t.Fatalf("compacted snapshot missing: %v", err)
	}
	cols, err := dataset.DecodeIngestSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if cols.Len() != 5 {
		t.Fatalf("snapshot rows = %d, want 5", cols.Len())
	}
	for i := 0; i < cols.Len(); i++ {
		if cols.City[i] != "A" || !strings.HasPrefix(cols.ISP[i], "ISP-") {
			t.Fatalf("row %d mangled: %q %q", i, cols.City[i], cols.ISP[i])
		}
	}
}

// refreshStatsz decodes the /statsz model block for one city.
func refreshStatsz(t *testing.T, base, city string) (generation, rowsSince uint64, sealedRows uint64) {
	t.Helper()
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st struct {
		SealedRows uint64 `json:"sealed_rows"`
		Models     map[string]struct {
			Generation     uint64 `json:"generation"`
			RowsSinceRefit uint64 `json:"rows_since_refit"`
		} `json:"models"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statsz: %v: %s", err, body)
	}
	m, ok := st.Models[city]
	if !ok {
		t.Fatalf("statsz missing model for %s: %s", city, body)
	}
	return m.Generation, m.RowsSinceRefit, st.SealedRows
}

// TestDaemonLiveRefreshMatchesColdRestart is the end-to-end refresh gate
// (ISSUE 7): boot the daemon with refresh triggers, ingest a workload while
// the per-city model refits live (no request may drop or error), probe
// /v1/classify, then cold-restart the daemon on the same segment directory
// and check the probes classify byte-identically — a restart reconstructs
// exactly the model the live refreshes converged to.
func TestDaemonLiveRefreshMatchesColdRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("boots the daemon twice")
	}
	dir := t.TempDir()
	daemonArgs := []string{
		"-ingest", "127.0.0.1:0",
		"-ingest-cities", "A",
		"-ingest-dir", dir,
		"-ingest-scale", "0.001",
		"-ingest-batch-rows", "25",
		"-ingest-refit-rows", "1",
	}
	addrs, shutdown := startDaemon(t, daemonArgs...)
	base := "http://" + addrs.Ingest

	// Replay a deterministic workload; every POST must succeed even as the
	// model refits underneath.
	rows := make([]dataset.IngestRow, 100)
	tbase := time.Unix(1609459200, 0).UTC()
	for i := range rows {
		rows[i] = dataset.IngestRow{
			TestID: i, UserID: i % 10, City: "A", ISP: "ISP-A",
			Timestamp:    tbase.Add(time.Duration(i) * time.Second),
			DownloadMbps: 30 + float64(i%12)*40,
			UploadMbps:   2 + float64(i%9)*5,
			LatencyMs:    8,
		}
	}
	for i := range rows {
		resp, err := http.Post(base+"/v1/ingest", "application/json",
			bytes.NewReader(ingest.AppendSubmission(nil, &rows[i])))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest POST %d = %d: %s", i, resp.StatusCode, body)
		}
	}

	// Wait until every row is sealed and folded (rows_since_refit drains).
	deadline := time.Now().Add(20 * time.Second)
	for {
		gen, pending, sealed := refreshStatsz(t, base, "A")
		if sealed == uint64(len(rows)) && pending == 0 && gen >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refresh never converged: gen=%d pending=%d sealed=%d", gen, pending, sealed)
		}
		time.Sleep(20 * time.Millisecond)
	}

	probe := func(base string, row *dataset.IngestRow) []byte {
		resp, err := http.Post(base+"/v1/classify", "application/json",
			bytes.NewReader(ingest.AppendSubmission(nil, row)))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify = %d: %s", resp.StatusCode, body)
		}
		return body
	}
	liveAcks := make([][]byte, 20)
	for i := range liveAcks {
		liveAcks[i] = probe(base, &rows[i])
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Cold restart over the same (now compacted) directory: the startup
	// fold must rebuild the exact serving model.
	addrs2, shutdown2 := startDaemon(t, daemonArgs...)
	base2 := "http://" + addrs2.Ingest
	if gen, _, _ := refreshStatsz(t, base2, "A"); gen != 1 {
		t.Fatalf("cold-restart generation = %d, want 1 (startup fold)", gen)
	}
	for i := range liveAcks {
		if cold := probe(base2, &rows[i]); !bytes.Equal(cold, liveAcks[i]) {
			t.Fatalf("probe %d: cold ack %s != live ack %s", i, cold, liveAcks[i])
		}
	}
	if err := shutdown2(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
