package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"speedctx/internal/dataset"
	"speedctx/internal/ingest"
	"speedctx/internal/ndt7"
	"speedctx/internal/speedtest"
)

// startDaemon runs the daemon on ephemeral ports with the given extra args
// and returns the bound addresses plus a shutdown func that cancels the
// run context and reports run's error.
func startDaemon(t *testing.T, extra ...string) (Addrs, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan Addrs, 1)
	oldStarted := started
	started = func(a Addrs) { addrCh <- a }
	t.Cleanup(func() { started = oldStarted })

	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, args, io.Discard) }()

	select {
	case a := <-addrCh:
		return a, func() error {
			cancel()
			select {
			case err := <-errCh:
				return err
			case <-time.After(10 * time.Second):
				t.Fatal("daemon did not shut down after context cancel")
				return nil
			}
		}
	case err := <-errCh:
		cancel()
		t.Fatalf("daemon exited before start: %v", err)
		return Addrs{}, nil
	case <-time.After(30 * time.Second):
		cancel()
		t.Fatal("daemon never reported started")
		return Addrs{}, nil
	}
}

// TestDaemonSmoke boots the full daemon on ephemeral ports, runs one
// raw-TCP test and one NDT7 test against it, and checks context cancel
// shuts it down cleanly.
func TestDaemonSmoke(t *testing.T) {
	addrs, shutdown := startDaemon(t,
		"-ndt7", "127.0.0.1:0",
		"-rate", "80", "-perconn", "40",
	)
	if addrs.Raw == "" || addrs.NDT7 == "" {
		t.Fatalf("missing bound addresses: %+v", addrs)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := speedtest.Ping(ctx, addrs.Raw); err != nil {
		t.Fatalf("ping: %v", err)
	}
	spec := speedtest.ClientSpec{Connections: 2, Duration: 400 * time.Millisecond}
	res, err := speedtest.Download(ctx, addrs.Raw, spec)
	if err != nil {
		t.Fatalf("raw download: %v", err)
	}
	if res.Bytes <= 0 || res.Throughput <= 0 {
		t.Fatalf("raw download measured nothing: %+v", res)
	}

	nres, err := ndt7.Download(ctx, addrs.NDT7, 400*time.Millisecond)
	if err != nil {
		t.Fatalf("ndt7 download: %v", err)
	}
	if nres.Bytes <= 0 {
		t.Fatalf("ndt7 download measured nothing: %+v", nres)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestDaemonIngestMode boots the daemon with -ingest, posts results, and
// checks shutdown seals and compacts the snapshot.
func TestDaemonIngestMode(t *testing.T) {
	dir := t.TempDir()
	addrs, shutdown := startDaemon(t,
		"-ingest", "127.0.0.1:0",
		"-ingest-cities", "A",
		"-ingest-dir", dir,
		"-ingest-scale", "0.001",
	)
	if addrs.Ingest == "" {
		t.Fatal("ingest address not bound")
	}
	base := "http://" + addrs.Ingest

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	row := dataset.IngestRow{
		TestID: 1, UserID: 2, City: "A", ISP: "ISP-A",
		Timestamp:    time.Unix(1609459200, 0).UTC(),
		DownloadMbps: 412.5, UploadMbps: 18.2, LatencyMs: 11.3,
	}
	for i := 0; i < 5; i++ {
		row.TestID = i
		resp, err := http.Post(base+"/v1/ingest", "application/json",
			bytes.NewReader(ingest.AppendSubmission(nil, &row)))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest POST = %d: %s", resp.StatusCode, body)
		}
		var ack struct {
			Tier       int     `json:"tier"`
			UploadTier int     `json:"upload_tier"`
			Confidence float64 `json:"confidence"`
		}
		if err := json.Unmarshal(body, &ack); err != nil {
			t.Fatalf("ack: %v: %s", err, body)
		}
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	data, err := os.ReadFile(filepath.Join(dir, ingest.CompactedName))
	if err != nil {
		t.Fatalf("compacted snapshot missing: %v", err)
	}
	cols, err := dataset.DecodeIngestSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if cols.Len() != 5 {
		t.Fatalf("snapshot rows = %d, want 5", cols.Len())
	}
	for i := 0; i < cols.Len(); i++ {
		if cols.City[i] != "A" || !strings.HasPrefix(cols.ISP[i], "ISP-") {
			t.Fatalf("row %d mangled: %q %q", i, cols.City[i], cols.ISP[i])
		}
	}
}
