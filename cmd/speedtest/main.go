// Command speedtest measures a speedtestd server with any of the three
// methodologies, making the §6.3 vendor gap observable with real sockets:
//
//	speedtest -addr 127.0.0.1:8099 -style ookla   # multi-connection raw TCP
//	speedtest -addr 127.0.0.1:8099 -style ndt     # single raw TCP connection
//	speedtest -addr 127.0.0.1:8100 -style ndt7    # single WebSocket stream
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"speedctx/internal/ndt7"
	"speedctx/internal/speedtest"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "speedtest:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("speedtest", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8099", "server address")
	style := fs.String("style", "ookla", "methodology: ookla (multi-connection), ndt (single raw TCP), or ndt7 (single WebSocket)")
	seconds := fs.Float64("duration", 3, "transfer seconds")
	upload := fs.Bool("upload", false, "measure upload instead of download")
	if err := fs.Parse(args); err != nil {
		return err
	}
	duration := time.Duration(*seconds * float64(time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), duration+15*time.Second)
	defer cancel()

	if *style == "ndt7" {
		runner := ndt7.Download
		dir := "download"
		if *upload {
			runner = ndt7.Upload
			dir = "upload"
		}
		res, err := runner(ctx, *addr, duration)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s (ndt7, 1 websocket): %s over %s (%d bytes, %d server measurements)\n",
			dir, res.Throughput, res.Elapsed.Round(time.Millisecond), res.Bytes, len(res.ServerMeasurements))
		return nil
	}

	var spec speedtest.ClientSpec
	switch *style {
	case "ookla":
		spec = speedtest.OoklaStyle()
	case "ndt":
		spec = speedtest.NDTStyle()
	default:
		return fmt.Errorf("unknown style %q", *style)
	}
	spec.Duration = duration

	rtt, err := speedtest.Ping(ctx, *addr)
	if err != nil {
		return fmt.Errorf("ping: %w", err)
	}

	dir := "download"
	runner := speedtest.Download
	if *upload {
		dir = "upload"
		runner = speedtest.Upload
	}
	res, err := runner(ctx, *addr, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s (%s, %d conns): %s over %s (rtt %s, %d bytes)\n",
		dir, *style, res.Connections, res.Throughput, res.Elapsed.Round(time.Millisecond),
		rtt.Round(time.Microsecond), res.Bytes)
	return nil
}
