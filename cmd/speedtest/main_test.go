package main

import (
	"bytes"
	"strings"
	"testing"

	"speedctx/internal/ndt7"
	"speedctx/internal/speedtest"
)

func TestRunAgainstRawServer(t *testing.T) {
	srv, err := speedtest.NewServer("127.0.0.1:0", speedtest.ServerConfig{TotalRate: 5e6})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, style := range []string{"ookla", "ndt"} {
		var buf bytes.Buffer
		err := run([]string{"-addr", srv.Addr(), "-style", style, "-duration", "1"}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", style, err)
		}
		if !strings.Contains(buf.String(), "download ("+style) {
			t.Errorf("%s output: %q", style, buf.String())
		}
	}

	var buf bytes.Buffer
	if err := run([]string{"-addr", srv.Addr(), "-style", "ndt", "-duration", "1", "-upload"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "upload (ndt") {
		t.Errorf("upload output: %q", buf.String())
	}
}

func TestRunAgainstNDT7Server(t *testing.T) {
	srv, err := ndt7.NewServer("127.0.0.1:0", ndt7.ServerConfig{Rate: 4e6, Duration: 2e9})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var buf bytes.Buffer
	if err := run([]string{"-addr", srv.Addr(), "-style", "ndt7", "-duration", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ndt7, 1 websocket") {
		t.Errorf("ndt7 output: %q", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-style", "bogus"}, &buf); err == nil {
		t.Error("unknown style should error")
	}
	if err := run([]string{"-addr", "127.0.0.1:1", "-style", "ndt", "-duration", "1"}, &buf); err == nil {
		t.Error("unreachable server should error")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag should error")
	}
}
