// The load subcommand drives the ingest service at full tilt and reports
// sustained throughput and latency percentiles:
//
//	speedctx load -rows 100000 -conns 4 -batch 64 -min-rate 100000
//
// With no -addr it self-hosts the ingest server in-process (real HTTP over
// loopback — the same handler, classifier, queue and batcher path as
// speedtestd -ingest) so one command is a reproducible benchmark; pointing
// -addr at a running speedtestd load-tests that instead. Synthetic
// subscribers replay each city's Ookla samples, so the request mix has the
// paper's tier structure rather than uniform noise.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"speedctx/internal/core"
	"speedctx/internal/dataset"
	"speedctx/internal/experiments"
	"speedctx/internal/ingest"
)

type loadReport struct {
	Rows         int     `json:"rows"`
	Errors       int     `json:"errors"`
	Seconds      float64 `json:"seconds"`
	RowsPerSec   float64 `json:"rows_per_sec"`
	P50Ns        float64 `json:"p50_ns"`
	P95Ns        float64 `json:"p95_ns"`
	P99Ns        float64 `json:"p99_ns"`
	P999Ns       float64 `json:"p999_ns"`
	AllocsPerRow float64 `json:"allocs_per_row"`
	Snapshot     string  `json:"snapshot,omitempty"`
}

func runLoad(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	addr := fs.String("addr", "", "ingest server address (host:port); empty self-hosts in-process")
	cities := fs.String("cities", "A,B", "comma-separated cities to draw synthetic subscribers from")
	rows := fs.Int("rows", 100000, "total results to ingest")
	conns := fs.Int("conns", 4, "concurrent client connections")
	batch := fs.Int("batch", 64, "rows per request (1 = single-POST /v1/ingest, >1 = NDJSON /v1/ingest/batch)")
	scale := fs.Float64("scale", 0.002, "dataset scale for the model fits and sample pool")
	seed := fs.Int64("seed", 2021, "generation seed")
	minRate := fs.Float64("min-rate", 0, "fail unless sustained rows/sec reaches this floor (0 = no floor)")
	dir := fs.String("dir", "", "segment directory when self-hosting (empty = temp dir, removed afterwards)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rows <= 0 || *conns <= 0 || *batch <= 0 {
		return fmt.Errorf("load: rows, conns and batch must be positive")
	}

	s := experiments.NewSuite(*scale, *seed)
	s.FastFit = true

	// Deterministic synthetic subscribers: cycle each city's Ookla sample
	// view in a fixed interleave, stamping sequential test ids and
	// timestamps. Two runs with the same flags issue identical requests.
	var cityIDs []string
	for _, id := range strings.Split(*cities, ",") {
		if id = strings.TrimSpace(id); id != "" {
			cityIDs = append(cityIDs, id)
		}
	}
	if len(cityIDs) == 0 {
		return fmt.Errorf("load: no cities configured")
	}
	samples := make(map[string][]core.Sample, len(cityIDs))
	for _, id := range cityIDs {
		b, err := s.City(id)
		if err != nil {
			return err
		}
		samples[id] = b.OoklaSampleView()
	}
	base := time.Unix(1609459200, 0).UTC()
	makeRow := func(j int) dataset.IngestRow {
		id := cityIDs[j%len(cityIDs)]
		pool := samples[id]
		sm := pool[(j/len(cityIDs))%len(pool)]
		return dataset.IngestRow{
			TestID:       j,
			UserID:       j % 1000,
			City:         id,
			ISP:          "ISP-" + id,
			Timestamp:    base.Add(time.Duration(j) * time.Second),
			DownloadMbps: sm.Download,
			UploadMbps:   sm.Upload,
			LatencyMs:    float64(j%60) + 0.25,
		}
	}

	// Self-host unless a target was given.
	target := *addr
	var (
		pipe    *ingest.Pipeline
		httpSrv *http.Server
		segDir  string
	)
	if target == "" {
		classifiers := make(map[string]*core.Classifier, len(cityIDs))
		for _, id := range cityIDs {
			cl, err := s.CityClassifier(id)
			if err != nil {
				return err
			}
			classifiers[id] = cl
		}
		segDir = *dir
		if segDir == "" {
			tmp, err := os.MkdirTemp("", "speedctx-load-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			segDir = tmp
		}
		var err error
		pipe, err = ingest.NewPipeline(ingest.PipelineConfig{Dir: segDir})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			pipe.Close()
			return err
		}
		httpSrv = &http.Server{Handler: ingest.NewServer(pipe, ingest.StaticModels(classifiers), ingest.ServerConfig{}).Handler()}
		go httpSrv.Serve(ln)
		target = ln.Addr().String()
	}

	url := "http://" + target + "/v1/ingest"
	if *batch > 1 {
		url = "http://" + target + "/v1/ingest/batch"
	}

	// Pre-render every request body so the timed section measures the
	// server path, not client-side formatting.
	nReq := (*rows + *batch - 1) / *batch
	bodies := make([][]byte, 0, nReq)
	total := 0
	for at := 0; at < *rows; at += *batch {
		var buf []byte
		for j := at; j < at+*batch && j < *rows; j++ {
			row := makeRow(j)
			buf = ingest.AppendSubmission(buf, &row)
			if *batch > 1 {
				buf = append(buf, '\n')
			}
			total++
		}
		bodies = append(bodies, buf)
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: *conns,
	}}
	lats := make([][]float64, *conns)
	errCounts := make([]int, *conns)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]float64, 0, len(bodies) / *conns + 1)
			for i := w; i < len(bodies); i += *conns {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					errCounts[w]++
					continue
				}
				_, cerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat = append(lat, float64(time.Since(t0).Nanoseconds()))
				if cerr != nil || resp.StatusCode != http.StatusOK {
					errCounts[w]++
				}
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	rep := loadReport{Rows: total, Seconds: elapsed.Seconds()}
	rep.RowsPerSec = float64(total) / elapsed.Seconds()
	rep.AllocsPerRow = float64(ms1.Mallocs-ms0.Mallocs) / float64(total)
	var all []float64
	for w := range lats {
		all = append(all, lats[w]...)
		rep.Errors += errCounts[w]
	}
	sort.Float64s(all)
	q := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return all[int(p*float64(len(all)-1))]
	}
	rep.P50Ns, rep.P95Ns, rep.P99Ns, rep.P999Ns = q(0.50), q(0.95), q(0.99), q(0.999)

	if httpSrv != nil {
		httpSrv.Close()
		if err := pipe.Close(); err != nil {
			return err
		}
		snap, err := ingest.Compact(segDir)
		if err != nil {
			return err
		}
		if *dir != "" {
			rep.Snapshot = snap
		}
	}

	if *jsonOut {
		fmt.Fprintf(out, `{"rows":%d,"errors":%d,"seconds":%.3f,"rows_per_sec":%.0f,"p50_ns":%.0f,"p95_ns":%.0f,"p99_ns":%.0f,"p999_ns":%.0f,"allocs_per_row":%.1f`,
			rep.Rows, rep.Errors, rep.Seconds, rep.RowsPerSec, rep.P50Ns, rep.P95Ns, rep.P99Ns, rep.P999Ns, rep.AllocsPerRow)
		if rep.Snapshot != "" {
			fmt.Fprintf(out, `,"snapshot":%q`, rep.Snapshot)
		}
		fmt.Fprintln(out, "}")
	} else {
		fmt.Fprintf(out, "ingested %d rows in %.2fs over %d conns (batch %d): %.0f rows/sec\n",
			rep.Rows, rep.Seconds, *conns, *batch, rep.RowsPerSec)
		fmt.Fprintf(out, "request latency: p50 %s  p95 %s  p99 %s  p999 %s\n",
			time.Duration(rep.P50Ns), time.Duration(rep.P95Ns), time.Duration(rep.P99Ns), time.Duration(rep.P999Ns))
		fmt.Fprintf(out, "allocations: %.1f/row (whole process)\n", rep.AllocsPerRow)
		if rep.Snapshot != "" {
			fmt.Fprintf(out, "snapshot: %s\n", rep.Snapshot)
		}
	}

	if rep.Errors > 0 {
		return fmt.Errorf("load: %d of %d requests failed", rep.Errors, len(bodies))
	}
	if *minRate > 0 && rep.RowsPerSec < *minRate {
		return fmt.Errorf("load: sustained %.0f rows/sec, below the -min-rate floor %.0f", rep.RowsPerSec, *minRate)
	}
	return nil
}
