// Command speedctx regenerates the paper's tables and figures from the
// synthetic datasets and runs the BST pipeline on demand.
//
// Usage:
//
//	speedctx table  <1|2|3|4|5|6|7|ablate-gmm|ablate-upload|ablate-bw|tcp|vendorgap|bbr|challenge|significance|assoc> [flags]
//	speedctx figure <1|2|4|5|6|7|8|9a|9b|9c|9d|10|11|12|13|14|15|16> [flags]
//	speedctx generate -city A -out DIR [flags]
//	speedctx bst -city A [flags]
//	speedctx all [flags]
//	speedctx load [-addr HOST:PORT] [-rows N] [-conns N] [-batch N] [-min-rate R]
//	speedctx tiles [-city A] [-zoom N] [-bbox ...] [-metric M] [-format json|csv] [-stream [-cluster-zoom N]] [-verify]
//	speedctx stream-verify [-rows N]
//	speedctx zonemap-verify [-rows N]
//
// Common flags: -scale (fraction of the paper's dataset sizes, default
// 0.02), -seed, -ascii (render figures as terminal charts), -par (worker
// parallelism for the BST fits and the `all` fan-out; 0 = all CPUs, 1 =
// serial — output is identical at every setting), -fast (binned KDE +
// histogram-EM fast paths for large slices; approximate but likewise
// identical at every -par), -bins (fast-path resolution, 0 = auto) and
// -snapshot-dir (a .sxc snapshot cache directory: cities load from it
// instead of regenerating, and misses write back — output is byte-identical
// with or without it; DESIGN.md §10).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"speedctx/internal/challenge"
	"speedctx/internal/core"
	"speedctx/internal/dataset"
	"speedctx/internal/experiments"
	"speedctx/internal/geo"
	"speedctx/internal/opendata"
	"speedctx/internal/parallel"
	"speedctx/internal/plans"
	"speedctx/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "speedctx:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return usageError()
	}
	cmd, rest := args[0], args[1:]
	if cmd == "load" {
		// The load generator has its own flag surface (connections,
		// batch size, rate floor) — dispatch before the common flags.
		return runLoad(rest, out)
	}
	if cmd == "sketch-verify" {
		// The determinism gate likewise owns its flags (shard counts).
		return runSketchVerify(rest, out)
	}
	if cmd == "tiles" {
		// The tile query layer owns its flags (zoom, bbox, metric, verify).
		return runTiles(rest, out)
	}
	if cmd == "stream-verify" {
		// The streaming-scan identity gate owns its flags (row count).
		return runStreamVerify(rest, out)
	}
	if cmd == "zonemap-verify" {
		// The zone-map pushdown identity gate owns its flags (row count).
		return runZonemapVerify(rest, out)
	}
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	scale := fs.Float64("scale", 0.02, "fraction of the paper's dataset sizes")
	seed := fs.Int64("seed", 2021, "generation seed")
	par := fs.Int("par", 0, "worker parallelism: 0 = all CPUs, 1 = serial (output is identical at every setting)")
	fast := fs.Bool("fast", false, "binned KDE + histogram-EM fast paths for large slices (approximate; see DESIGN.md §8)")
	bins := fs.Int("bins", 0, "bin-grid resolution for -fast: 0 = auto from bandwidth/defaults")
	ascii := fs.Bool("ascii", false, "render figures as terminal charts")
	city := fs.String("city", "A", "city identifier (A-D)")
	outDir := fs.String("out", "speedctx-data", "output directory for generate")
	input := fs.String("input", "", "Ookla CSV to analyze (challenge command); empty generates synthetic data")
	snapDir := fs.String("snapshot-dir", "", "directory of .sxc city snapshots: load cities from it instead of generating, writing snapshots back on a miss (output is identical either way; see DESIGN.md §10)")

	var positional []string
	for len(rest) > 0 && rest[0] != "" && rest[0][0] != '-' {
		positional = append(positional, rest[0])
		rest = rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	s := experiments.NewSuite(*scale, *seed)
	s.Parallelism = *par
	s.FastFit = *fast
	s.FastFitBins = *bins
	s.SnapshotDir = *snapDir

	switch cmd {
	case "table":
		if len(positional) != 1 {
			return fmt.Errorf("table: want one table id")
		}
		return emitTable(s, positional[0], out)
	case "figure":
		if len(positional) != 1 {
			return fmt.Errorf("figure: want one figure id")
		}
		return emitFigure(s, positional[0], *ascii, out)
	case "generate":
		return generate(s, *city, *outDir, out)
	case "bst":
		return bstSummary(s, *city, out)
	case "challenge":
		return challengeFile(s, *city, *input, out)
	case "all":
		return emitAll(s, *ascii, out)
	default:
		return usageError()
	}
}

func usageError() error {
	return fmt.Errorf("usage: speedctx <table|figure|generate|bst|challenge|all|load|sketch-verify|stream-verify|zonemap-verify|tiles> [args] [flags]")
}

// challengeFile runs the FCC challenge-evidence screen over an Ookla CSV
// (or the suite's synthetic data when no input is given), so real exported
// datasets can be screened directly.
func challengeFile(s *experiments.Suite, city, input string, out io.Writer) error {
	var (
		recs    []dataset.OoklaRecord
		samples []core.Sample
	)
	if input == "" {
		b, err := s.City(city)
		if err != nil {
			return err
		}
		recs = b.Ookla
		// Reuse the bundle's shared sample view so this fit hits the same
		// cache entry as every suite table/figure over the city slice.
		samples = b.OoklaSampleView()
	} else {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		recs, err = dataset.ReadOoklaCSV(f)
		if err != nil {
			return err
		}
		cols := dataset.ColumnizeOokla(recs)
		samples = make([]core.Sample, cols.Len())
		for i := range samples {
			samples[i] = core.Sample{Download: cols.Download[i], Upload: cols.Upload[i]}
		}
	}
	cat, ok := plans.ByCity(city)
	if !ok {
		return fmt.Errorf("unknown city %q", city)
	}
	res, err := core.Fit(samples, cat, s.BSTConfig())
	if err != nil {
		return err
	}
	rep, err := challenge.BuildReport(recs, res, cat, challenge.DefaultPolicy())
	if err != nil {
		return err
	}
	return rep.Write(out)
}

func emitTable(s *experiments.Suite, id string, out io.Writer) error {
	var (
		t   *report.Table
		err error
	)
	switch id {
	case "1":
		t, err = s.Table1()
	case "2":
		t, err = s.Table2()
	case "3":
		t, err = s.Table3()
	case "4":
		t, err = s.Table4()
	case "5", "6", "7":
		ts, e := s.Tables567()
		if e != nil {
			return e
		}
		t = ts[int(id[0]-'5')]
	case "ablate-gmm":
		t, err = s.AblationGMMvsKMeans()
	case "ablate-upload":
		t, err = s.AblationUploadFirst()
	case "ablate-bw":
		t, err = s.AblationBandwidthRule()
	case "tcp":
		t = experiments.TCPModelValidation()
	case "vendorgap":
		t = experiments.VendorGapSweep()
	case "bbr":
		t = experiments.RecommendationBBR()
	case "challenge":
		t, err = s.ChallengeTable("A")
	case "significance":
		t, err = s.VendorSignificance()
	case "tiles":
		t, err = s.AggregationLoss()
	case "census":
		t, err = s.BottleneckCensus("A", 0)
	case "sweep":
		t = experiments.RobustnessSweep(2021, s.Parallelism, s.BSTConfig())
	case "assoc":
		t, err = s.MLabAssociationStats("A")
	default:
		return fmt.Errorf("unknown table %q", id)
	}
	if err != nil {
		return err
	}
	return t.Write(out)
}

func emitFigure(s *experiments.Suite, id string, ascii bool, out io.Writer) error {
	var figs []*report.Figure
	appendFig := func(f *report.Figure, err error) error {
		if err != nil {
			return err
		}
		figs = append(figs, f)
		return nil
	}
	var err error
	switch id {
	case "1":
		err = appendFig(s.Figure1())
	case "2":
		err = appendFig(s.Figure2())
	case "4":
		err = appendFig(s.Figure4())
	case "5":
		err = appendFig(s.Figure5())
	case "6":
		err = appendFig(s.Figure6())
	case "7":
		err = appendFig(s.Figure7())
	case "8":
		err = appendFig(s.Figure8())
	case "9a", "9b", "9c", "9d":
		err = appendFig(s.Figure9(id[1:]))
	case "10":
		err = appendFig(s.Figure10())
	case "11":
		err = appendFig(s.Figure11())
	case "12":
		if err = appendFig(s.Figure12(1)); err == nil {
			err = appendFig(s.Figure12(2))
		}
	case "13":
		figs, err = s.Figure13()
	case "joint":
		hm, herr := s.JointDensity("A")
		if herr != nil {
			return herr
		}
		if ascii {
			return hm.ASCII(out, 78, 22)
		}
		return hm.Write(out)
	case "14":
		figs, err = s.Figure14()
	case "15":
		figs, err = s.Figure15()
	case "16":
		figs, err = s.Figures161718()
	default:
		return fmt.Errorf("unknown figure %q", id)
	}
	if err != nil {
		return err
	}
	for _, f := range figs {
		if ascii {
			if err := f.ASCIIPlot(out, 72, 18); err != nil {
				return err
			}
			continue
		}
		if err := f.Write(out); err != nil {
			return err
		}
	}
	return nil
}

func generate(s *experiments.Suite, city, outDir string, out io.Writer) error {
	b, err := s.City(city)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(io.Writer) error) error {
		path := filepath.Join(outDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fn(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", path)
		return nil
	}
	if err := write("ookla-"+city+".csv", func(w io.Writer) error {
		return dataset.WriteOoklaCSV(w, b.Ookla)
	}); err != nil {
		return err
	}
	if err := write("mlab-"+city+".csv", func(w io.Writer) error {
		return dataset.WriteMLabCSV(w, b.MLabRows)
	}); err != nil {
		return err
	}
	if err := write("mba-"+city+".csv", func(w io.Writer) error {
		return dataset.WriteMBACSV(w, b.MBA)
	}); err != nil {
		return err
	}
	// Also emit the public-aggregate view (Ookla open-data tile schema).
	tiles := opendata.Aggregate(b.Ookla, geo.LatLon{Lat: 34.42, Lon: -119.70}, 5)
	return write("tiles-"+city+".csv", func(w io.Writer) error {
		return opendata.WriteTilesCSV(w, tiles)
	})
}

func bstSummary(s *experiments.Suite, city string, out io.Writer) error {
	b, err := s.City(city)
	if err != nil {
		return err
	}
	samples := b.OoklaSampleView()
	res, err := core.Fit(samples, b.Catalog, s.BSTConfig())
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("BST stage-1 summary, City %s Ookla (%d tests)", city, len(samples)),
		Headers: []string{"Upload tier", "Offered up (Mbps)", "#Tests", "Cluster mean (Mbps)"},
	}
	tiers := b.Catalog.UploadTiers()
	for i, tc := range res.UploadClusterSummary() {
		t.AddRow(tc.Label, float64(tiers[i].Upload), tc.Measurements, tc.MeanMbps)
	}
	if err := t.Write(out); err != nil {
		return err
	}
	counts := res.TierCounts()
	t2 := &report.Table{
		Title:   "Final plan-tier assignment",
		Headers: []string{"Plan tier", "Plan", "#Tests"},
	}
	t2.AddRow(0, "(unassigned/off-catalog)", counts[0])
	for tier := 1; tier < len(counts); tier++ {
		plan, _ := b.Catalog.PlanByTier(tier)
		t2.AddRow(tier, plan.String(), counts[tier])
	}
	return t2.Write(out)
}

// allTableIDs and allFigureIDs are the paper-order job lists of the `all`
// command.
var allTableIDs = []string{"1", "2", "3", "4", "5", "6", "7", "assoc",
	"ablate-gmm", "ablate-upload", "ablate-bw", "tcp", "vendorgap",
	"bbr", "challenge", "significance", "tiles", "census", "sweep"}

var allFigureIDs = []string{"1", "2", "4", "5", "6", "7", "8",
	"9a", "9b", "9c", "9d", "10", "11", "12", "13", "14", "15", "16", "joint"}

// emitAll regenerates every table and figure. The jobs fan out across the
// suite's worker pool — each renders into its own buffer, the suite's
// sync.Once memoization dedupes the shared BST fits — and the buffers are
// flushed in fixed paper order, so the output is byte-identical to a serial
// run at every -par setting.
func emitAll(s *experiments.Suite, ascii bool, out io.Writer) error {
	type job struct {
		id    string
		table bool
	}
	var jobs []job
	for _, id := range allTableIDs {
		jobs = append(jobs, job{id: id, table: true})
	}
	for _, id := range allFigureIDs {
		jobs = append(jobs, job{id: id})
	}
	type rendered struct {
		buf bytes.Buffer
		err error
	}
	results := parallel.Map(s.Parallelism, len(jobs), func(i int) *rendered {
		r := &rendered{}
		if jobs[i].table {
			r.err = emitTable(s, jobs[i].id, &r.buf)
		} else {
			r.err = emitFigure(s, jobs[i].id, ascii, &r.buf)
		}
		return r
	})
	for i, r := range results {
		if r.err != nil {
			return fmt.Errorf("%s: %w", jobs[i].id, r.err)
		}
		if _, err := out.Write(r.buf.Bytes()); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}
