package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("empty args should error")
	}
	if err := run([]string{"bogus"}, &buf); err == nil {
		t.Error("unknown command should error")
	}
	if err := run([]string{"table"}, &buf); err == nil {
		t.Error("table without id should error")
	}
	if err := run([]string{"table", "99"}, &buf); err == nil {
		t.Error("unknown table should error")
	}
	if err := run([]string{"figure", "zz"}, &buf); err == nil {
		t.Error("unknown figure should error")
	}
	if err := run([]string{"figure"}, &buf); err == nil {
		t.Error("figure without id should error")
	}
	if err := run([]string{"bst", "-city", "Z"}, &buf); err == nil {
		t.Error("unknown city should error")
	}
}

func TestTableCommands(t *testing.T) {
	// Small scale keeps this a smoke test; tcp/vendorgap/bbr don't need
	// a suite at all.
	out := runCLI(t, "table", "tcp")
	if !strings.Contains(out, "Mathis") {
		t.Errorf("tcp table:\n%s", out)
	}
	out = runCLI(t, "table", "vendorgap")
	if !strings.Contains(out, "Ookla/NDT") {
		t.Errorf("vendorgap table:\n%s", out)
	}
	out = runCLI(t, "table", "bbr")
	if !strings.Contains(out, "1-conn BBR") {
		t.Errorf("bbr table:\n%s", out)
	}
	out = runCLI(t, "table", "2", "-scale", "0.005")
	if !strings.Contains(out, "Accuracy") {
		t.Errorf("table 2:\n%s", out)
	}
}

func TestFigureCommands(t *testing.T) {
	out := runCLI(t, "figure", "4", "-scale", "0.005")
	if !strings.Contains(out, "# fig4") {
		t.Errorf("figure 4:\n%s", out)
	}
	out = runCLI(t, "figure", "8", "-scale", "0.005", "-ascii")
	if !strings.Contains(out, "alpha") {
		t.Errorf("figure 8 ascii:\n%s", out)
	}
}

func TestGenerateCommand(t *testing.T) {
	dir := t.TempDir()
	out := runCLI(t, "generate", "-city", "D", "-scale", "0.005", "-out", dir)
	for _, name := range []string{"ookla-D.csv", "mlab-D.csv", "mba-D.csv", "tiles-D.csv"} {
		path := filepath.Join(dir, name)
		if !strings.Contains(out, path) {
			t.Errorf("output missing %s:\n%s", path, out)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestBSTCommand(t *testing.T) {
	out := runCLI(t, "bst", "-city", "D", "-scale", "0.005")
	if !strings.Contains(out, "BST stage-1 summary") {
		t.Errorf("bst output:\n%s", out)
	}
	if !strings.Contains(out, "Final plan-tier assignment") {
		t.Errorf("bst output missing assignment table:\n%s", out)
	}
}

func TestChallengeCommandFromFile(t *testing.T) {
	dir := t.TempDir()
	runCLI(t, "generate", "-city", "A", "-scale", "0.005", "-out", dir)
	out := runCLI(t, "challenge", "-city", "A", "-input", filepath.Join(dir, "ookla-A.csv"))
	for _, want := range []string{"evidence", "meets-plan", "local-bottleneck"} {
		if !strings.Contains(out, want) {
			t.Errorf("challenge output missing %q:\n%s", want, out)
		}
	}
	// Synthetic fallback without -input.
	out = runCLI(t, "challenge", "-city", "A", "-scale", "0.005")
	if !strings.Contains(out, "Challenge evidence screen") {
		t.Errorf("synthetic challenge output:\n%s", out)
	}
	// Missing file errors.
	var buf bytes.Buffer
	if err := run([]string{"challenge", "-input", "/nonexistent.csv"}, &buf); err == nil {
		t.Error("missing input should error")
	}
}

func TestSweepCommand(t *testing.T) {
	out := runCLI(t, "table", "sweep")
	if !strings.Contains(out, "BST robustness") {
		t.Errorf("sweep output:\n%s", out)
	}
}

// TestAllOutputDeterministicAcrossParallelism is the end-to-end determinism
// gate for the parallel stats engine: the complete `all` run — every table
// and figure, fanned out across the pool and over parallel BST fits — must
// be byte-identical between a serial and a parallel invocation.
func TestAllOutputDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run; skipped in -short mode")
	}
	serial := runCLI(t, "all", "-scale", "0.005", "-par", "1")
	par := runCLI(t, "all", "-scale", "0.005", "-par", "8")
	if serial != par {
		t.Error("`all` output differs between -par 1 and -par 8")
	}
	if !strings.Contains(serial, "BST robustness") || !strings.Contains(serial, "# fig4") {
		t.Error("`all` output is missing expected sections")
	}
}

// TestAllSnapshotOutputIdentical is the end-to-end gate for the snapshot
// store (DESIGN.md §10): `speedctx all` must be byte-identical without a
// snapshot dir, with a cold one (generate + write) and with a warm one
// (load, skipping generation and parsing entirely).
func TestAllSnapshotOutputIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run; skipped in -short mode")
	}
	dir := t.TempDir()
	plain := runCLI(t, "all", "-scale", "0.005")
	cold := runCLI(t, "all", "-scale", "0.005", "-snapshot-dir", dir)
	warm := runCLI(t, "all", "-scale", "0.005", "-snapshot-dir", dir)
	if plain != cold {
		t.Error("`all` output differs between no-snapshot and cold-snapshot runs")
	}
	if plain != warm {
		t.Error("`all` output differs between no-snapshot and warm-snapshot runs")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Errorf("snapshot dir has %d entries after `all`, want 4 cities", len(entries))
	}
}

// TestAllFastOutputDeterministicAcrossParallelism extends the end-to-end
// gate to the binned fast paths and the shared fit cache: `-fast` must be
// byte-identical between serial and parallel runs too (DESIGN.md §8 — the
// approximation is deterministic, and cache keys ignore parallelism).
func TestAllFastOutputDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run; skipped in -short mode")
	}
	serial := runCLI(t, "all", "-scale", "0.005", "-fast", "-par", "1")
	par := runCLI(t, "all", "-scale", "0.005", "-fast", "-par", "8")
	if serial != par {
		t.Error("`all -fast` output differs between -par 1 and -par 8")
	}
	if !strings.Contains(serial, "BST robustness") || !strings.Contains(serial, "# fig4") {
		t.Error("`all -fast` output is missing expected sections")
	}
}
