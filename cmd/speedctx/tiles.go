// The tiles subcommand runs the geo-tiled aggregate query layer
// (DESIGN.md §13) from the command line:
//
//	speedctx tiles [-city A] [-scale 0.02] [-seed 2021] [-par 0]
//	               [-zoom 16] [-bbox minLat,minLon,maxLat,maxLon]
//	               [-metric download|upload|latency|tests|devices]
//	               [-format json|csv] [-snapshot-dir DIR] [-verify]
//	               [-stream [-cluster-zoom 16]]
//
// Without -snapshot-dir the city is generated in memory and aggregated;
// with it, rows come from the city's .sxc snapshot through a pruned column
// scan (five of sixteen Ookla columns decoded, everything else skipped by
// seek). Both paths produce byte-identical output.
//
// -verify is the CI gate for that claim: it renders the city's tiles from
// memory and from a freshly written snapshot, across parallelism 1, 4 and
// all-CPUs, cold and through a warm result cache, and fails unless every
// rendering is byte-identical and the snapshot scan really skipped the
// unrequested columns.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"speedctx/internal/core"
	"speedctx/internal/dataset"
	"speedctx/internal/experiments"
	"speedctx/internal/opendata"
	"speedctx/internal/tilequery"
)

func runTiles(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tiles", flag.ContinueOnError)
	city := fs.String("city", "A", "city identifier (A-D)")
	scale := fs.Float64("scale", 0.02, "fraction of the paper's dataset sizes")
	seed := fs.Int64("seed", 2021, "generation seed")
	par := fs.Int("par", 0, "aggregation parallelism: 0 = all CPUs, 1 = serial (output is identical at every setting)")
	zoom := fs.Int("zoom", opendata.TileZoom, "output zoom level (1..16)")
	bbox := fs.String("bbox", "", "restrict output to minLat,minLon,maxLat,maxLon")
	metric := fs.String("metric", "", "single-metric projection: download|upload|latency|tests|devices (JSON only)")
	format := fs.String("format", "json", "output format: json or csv")
	snapDir := fs.String("snapshot-dir", "", "read rows from this .sxc snapshot directory via a pruned column scan (writing the snapshot on a miss) instead of keeping the city in memory")
	stream := fs.Bool("stream", false, "with -snapshot-dir: fold the snapshot through the streaming block scanner in bounded batches instead of materializing the city columns (byte-identical output; DESIGN.md §14)")
	scanBatch := fs.Int("scan-batch", 0, "rows per streamed scan batch for -stream (0 = default)")
	clusterZoom := fs.Int("cluster-zoom", 0, "with -stream: write (or reuse) a quadkey-clustered zoned sibling of the snapshot at this zoom and push the -bbox predicate into its scan, skipping row groups outside the box (byte-identical output; DESIGN.md §15); 0 disables")
	verify := fs.Bool("verify", false, "verify snapshot-vs-memory, parallelism and cache byte-identity, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *verify {
		return runTilesVerify(out, *city, *scale, *seed)
	}
	if *zoom < 1 || *zoom > opendata.TileZoom {
		return fmt.Errorf("tiles: -zoom must be in [1, %d]", opendata.TileZoom)
	}
	if *stream && *snapDir == "" {
		return fmt.Errorf("tiles: -stream needs -snapshot-dir (streaming scans a .sxc file)")
	}
	if *clusterZoom != 0 && !*stream {
		return fmt.Errorf("tiles: -cluster-zoom needs -stream (pushdown seeks through a streamed scan)")
	}
	if *clusterZoom < 0 || *clusterZoom > opendata.MaxZoom {
		return fmt.Errorf("tiles: -cluster-zoom must be in [1, %d] (or 0 to disable)", opendata.MaxZoom)
	}

	q := tilequery.Query{Zoom: *zoom}
	if *bbox != "" {
		rng, err := parseBBox(*bbox, *zoom)
		if err != nil {
			return err
		}
		q.Range = &rng
	}

	fitCfg := core.Config{Parallelism: *par, FastFit: true}
	var tiles []opendata.ContextTile
	if *stream {
		path, err := ensureSnapshot(*snapDir, *city, *scale, *seed, fitCfg)
		if err != nil {
			return err
		}
		tqcfg := tilequery.Config{City: *city, Parallelism: *par}
		var ix *tilequery.Index
		var ctr dataset.DecodeCounters
		if *clusterZoom > 0 {
			// Fit still streams the original (order-dependent) file; the fold
			// streams the clustered zoned sibling with the bbox pushed down.
			zpath, err := experiments.ClusterSnapshot(path, *clusterZoom, 0, 0)
			if err != nil {
				return err
			}
			ix, ctr, err = experiments.StreamTileIndexPushdown(path, zpath, *city, fitCfg, *scanBatch, tqcfg, q.Range)
			if err != nil {
				return err
			}
			if ctr.BlocksScanned+ctr.BlocksSkipped == 0 {
				return fmt.Errorf("tiles: clustered scan bound no zone-mapped groups (%+v)", ctr)
			}
		} else {
			var err error
			ix, ctr, err = experiments.StreamTileIndex(path, *city, fitCfg, *scanBatch, tqcfg)
			if err != nil {
				return err
			}
		}
		if ctr.ColumnsSkipped == 0 || ctr.SectionsSkipped == 0 {
			return fmt.Errorf("tiles: streamed snapshot scan skipped nothing (%+v)", ctr)
		}
		if tiles, err = ix.Tiles(q); err != nil {
			return err
		}
	} else {
		var rows *tilequery.Rows
		var err error
		if *snapDir != "" {
			rows, err = snapshotTileRows(*snapDir, *city, *scale, *seed, fitCfg)
		} else {
			s := experiments.NewSuite(*scale, *seed)
			s.Parallelism = *par
			s.FastFit = true
			rows, err = s.TileRows(*city)
		}
		if err != nil {
			return err
		}
		if tiles, err = tilequery.Aggregate(rows, tilequery.Config{City: *city, Parallelism: *par}, q); err != nil {
			return err
		}
	}
	switch *format {
	case "csv":
		return tilequery.WriteTilesCSV(out, tiles)
	case "json":
		buf, err := tilequery.AppendTilesJSON(nil, *zoom, tiles, *metric)
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		_, err = out.Write(buf)
		return err
	}
	return fmt.Errorf("tiles: unknown format %q", *format)
}

// ensureSnapshot returns the path of the city's snapshot in dir,
// generating and writing it first if the store misses.
func ensureSnapshot(dir, city string, scale float64, seed int64, fitCfg core.Config) (string, error) {
	store := &dataset.SnapshotStore{Dir: dir}
	key := dataset.SnapshotKey{City: city, Seed: seed, Scale: scale}
	path := store.Path(key)
	if _, err := os.Stat(path); err != nil {
		// Miss: let the suite generate the city and write the snapshot.
		s := experiments.NewSuite(scale, seed)
		s.Parallelism = fitCfg.Parallelism
		s.FastFit = true
		s.SnapshotDir = dir
		if _, err := s.City(city); err != nil {
			return "", err
		}
	}
	return path, nil
}

// snapshotTileRows reads the tile row view from the city's snapshot via
// ensureSnapshot, and insists the pruned scan skipped columns.
func snapshotTileRows(dir, city string, scale float64, seed int64, fitCfg core.Config) (*tilequery.Rows, error) {
	path, err := ensureSnapshot(dir, city, scale, seed, fitCfg)
	if err != nil {
		return nil, err
	}
	rows, ctr, err := experiments.TileRowsFromSnapshot(path, city, fitCfg)
	if err != nil {
		return nil, err
	}
	if ctr.ColumnsSkipped == 0 || ctr.SectionsSkipped == 0 {
		return nil, fmt.Errorf("tiles: pruned snapshot scan skipped nothing (%+v)", ctr)
	}
	return rows, nil
}

func parseBBox(s string, zoom int) (opendata.TileRange, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return opendata.TileRange{}, fmt.Errorf("tiles: -bbox wants minLat,minLon,maxLat,maxLon")
	}
	var f [4]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return opendata.TileRange{}, fmt.Errorf("tiles: bad bbox coordinate %q", p)
		}
		f[i] = v
	}
	return opendata.TileRangeForBBox(f[0], f[1], f[2], f[3], zoom)
}

// runTilesVerify is the `make check` gate (DESIGN.md §13): one city's
// tiles rendered every way the layer supports must be byte-identical.
func runTilesVerify(out io.Writer, city string, scale float64, seed int64) error {
	pars := []int{1, 4, 0}
	fmt.Fprintf(out, "tiles-verify: city %s scale %g seed %d, parallelism %v\n", city, scale, seed, pars)

	// Reference: in-memory rows, serial fit, serial aggregation.
	mem := experiments.NewSuite(scale, seed)
	mem.Parallelism = 1
	mem.FastFit = true
	memRows, err := mem.TileRows(city)
	if err != nil {
		return err
	}
	var want []byte
	renderAll := func(rows *tilequery.Rows, par int) ([]byte, error) {
		eng := tilequery.NewEngine(tilequery.Config{City: city, Parallelism: par}, 0)
		if err := eng.AddRows(rows); err != nil {
			return nil, err
		}
		var buf []byte
		for _, zoom := range []int{opendata.TileZoom, 12} {
			cold, err := eng.Tiles(tilequery.Query{Zoom: zoom})
			if err != nil {
				return nil, err
			}
			warm, err := eng.Tiles(tilequery.Query{Zoom: zoom})
			if err != nil {
				return nil, err
			}
			cb, err := tilequery.AppendTilesJSON(nil, zoom, cold, "")
			if err != nil {
				return nil, err
			}
			wb, err := tilequery.AppendTilesJSON(nil, zoom, warm, "")
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(cb, wb) {
				return nil, fmt.Errorf("tiles-verify: zoom %d cold/warm cache renderings differ", zoom)
			}
			buf = append(buf, cb...)
		}
		if st := eng.Stats(); st.CacheHits == 0 {
			return nil, fmt.Errorf("tiles-verify: warm pass hit no cache entries (%+v)", st)
		}
		return buf, nil
	}
	for _, par := range pars {
		got, err := renderAll(memRows, par)
		if err != nil {
			return err
		}
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			return fmt.Errorf("tiles-verify: in-memory rendering differs at parallelism %d", par)
		}
	}
	fmt.Fprintf(out, "tiles-verify: in-memory renderings identical (%d bytes, zooms 16+12, cold+warm)\n", len(want))

	// Snapshot path: write the snapshot to a scratch store, pruned-scan it
	// back, and re-render everything.
	dir, err := os.MkdirTemp("", "speedctx-tiles-verify-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snap := experiments.NewSuite(scale, seed)
	snap.Parallelism = 1
	snap.FastFit = true
	snap.SnapshotDir = dir
	if _, err := snap.City(city); err != nil {
		return err
	}
	path := (&dataset.SnapshotStore{Dir: dir}).Path(dataset.SnapshotKey{City: city, Seed: seed, Scale: scale})
	snapRows, ctr, err := experiments.TileRowsFromSnapshot(path, city, core.Config{Parallelism: 1, FastFit: true})
	if err != nil {
		return err
	}
	if ctr.ColumnsSkipped == 0 || ctr.SectionsSkipped == 0 {
		return fmt.Errorf("tiles-verify: pruned snapshot scan skipped nothing (%+v)", ctr)
	}
	for _, par := range pars {
		got, err := renderAll(snapRows, par)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("tiles-verify: snapshot rendering differs at parallelism %d", par)
		}
	}
	fmt.Fprintf(out, "tiles-verify: snapshot renderings identical (decoded %d columns, skipped %d columns / %d sections / %d bytes)\n",
		ctr.ColumnsDecoded, ctr.ColumnsSkipped, ctr.SectionsSkipped, ctr.BytesSkipped)

	// Streamed path (DESIGN.md §14): the batched scan→classify→fold must
	// render the same bytes at every batch size and fold parallelism.
	var streamWant []byte
	for _, batch := range []int{1, 4096, 1 << 30} {
		for _, par := range pars {
			ix, sctr, err := experiments.StreamTileIndex(path, city,
				core.Config{Parallelism: 1, FastFit: true}, batch,
				tilequery.Config{City: city, Parallelism: par})
			if err != nil {
				return err
			}
			if sctr != ctr {
				return fmt.Errorf("tiles-verify: streamed scan counters %+v differ from pruned decode's %+v", sctr, ctr)
			}
			var buf []byte
			for _, zoom := range []int{opendata.TileZoom, 12} {
				tiles, err := ix.Tiles(tilequery.Query{Zoom: zoom})
				if err != nil {
					return err
				}
				if buf, err = tilequery.AppendTilesJSON(buf, zoom, tiles, ""); err != nil {
					return err
				}
			}
			if streamWant == nil {
				// The engine path rendered cold+warm pairs; the index path
				// renders each zoom once, so compare streamed runs against
				// the first streamed rendering and pin that against the
				// engine rendering below.
				streamWant = buf
				continue
			}
			if !bytes.Equal(buf, streamWant) {
				return fmt.Errorf("tiles-verify: streamed rendering differs at batch %d parallelism %d", batch, par)
			}
		}
	}
	// The engine renderings concatenate cold+warm passes per zoom; rebuild
	// the same shape from the streamed bytes' single pass for the final
	// cross-path identity check.
	ixRef := tilequery.NewIndex(tilequery.Config{City: city, Parallelism: 1})
	if _, err := ixRef.AddRows(snapRows); err != nil {
		return err
	}
	var refBuf []byte
	for _, zoom := range []int{opendata.TileZoom, 12} {
		tiles, err := ixRef.Tiles(tilequery.Query{Zoom: zoom})
		if err != nil {
			return err
		}
		if refBuf, err = tilequery.AppendTilesJSON(refBuf, zoom, tiles, ""); err != nil {
			return err
		}
	}
	if !bytes.Equal(streamWant, refBuf) {
		return fmt.Errorf("tiles-verify: streamed rendering differs from materialized index rendering")
	}
	fmt.Fprintf(out, "tiles-verify: streamed renderings identical (batch {1,4096,whole} x parallelism %v)\n", pars)
	fmt.Fprintln(out, "tiles-verify: OK")
	return nil
}
