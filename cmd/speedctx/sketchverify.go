// The sketch-verify subcommand is the CI gate for the sketch determinism
// contract (DESIGN.md §12):
//
//	speedctx sketch-verify [-city A] [-scale 0.002] [-seed 2021] [-shards 1,7,64]
//
// It fits a city's BST twice at every shard count — once single-pass over
// the raw samples (-fast path), once from sketches sharded round-robin and
// merged in several orders — and fails unless the fits are byte-identical
// (every float compared by bit pattern via reflect.DeepEqual). This is the
// property the ingest refresh loop relies on: a refit over merged segment
// sketches must equal the refit a single holder of all rows would produce.
package main

import (
	"flag"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"strings"

	"speedctx/internal/core"
	"speedctx/internal/experiments"
	"speedctx/internal/plans"
	"speedctx/internal/stats"
)

func runSketchVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sketch-verify", flag.ContinueOnError)
	city := fs.String("city", "A", "city identifier (A-D)")
	scale := fs.Float64("scale", 0.02, "dataset scale for the verification fit (must yield >= 4096 uploads so the single-pass -fast path engages)")
	seed := fs.Int64("seed", 2021, "generation seed")
	shardsFlag := fs.String("shards", "1,7,64", "comma-separated shard counts to sweep")
	stream := fs.Bool("stream", false, "also verify the streamed deposit path: core.SketchesFromScan over batched sample scans must rebuild the single-pass sketches and fit bit-identically (DESIGN.md §14)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var shardCounts []int
	for _, f := range strings.Split(*shardsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("sketch-verify: bad shard count %q", f)
		}
		shardCounts = append(shardCounts, n)
	}

	s := experiments.NewSuite(*scale, *seed)
	s.FastFit = true
	b, err := s.City(*city)
	if err != nil {
		return err
	}
	samples := b.OoklaSampleView()
	cfg := s.BSTConfig()

	// Reference: the raw-sample fit (engages the single-pass -fast sketch
	// path internally) and its sketch-world restatement.
	res, err := core.Fit(samples, b.Catalog, cfg)
	if err != nil {
		return err
	}
	spec := s.CitySketchSpec(b.Catalog)
	single, err := core.SketchesFromResult(res, samples, spec)
	if err != nil {
		return err
	}
	want, err := core.FitFromSketches(single, b.Catalog, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "sketch-verify: city %s, %d samples, %d upload tiers, grid %d bins\n",
		*city, len(samples), len(single.Downloads), spec.Upload.Bins)

	// Stage-level contract: the stats fast path over raw uploads equals the
	// sketch fit over the merged upload sketch on the same grid.
	ups := make([]float64, len(samples))
	for i, sm := range samples {
		ups[i] = sm.Upload
	}
	if err := verifyStatsLevel(out, ups, cfg.FastFitBins, shardCounts); err != nil {
		return err
	}

	tiers := len(b.Catalog.UploadTiers())
	checks := 0
	for _, shards := range shardCounts {
		parts := make([]*core.TierSketches, shards)
		for i := range parts {
			if parts[i], err = core.NewTierSketches(spec, tiers); err != nil {
				return err
			}
		}
		for i, sm := range samples {
			parts[i%shards].AddSample(res.Assignments[i].UploadTier, sm.Download, sm.Upload)
		}
		for oi, order := range mergeOrders(shards) {
			merged, err := core.NewTierSketches(spec, tiers)
			if err != nil {
				return err
			}
			for _, pi := range order {
				if err := merged.Merge(parts[pi]); err != nil {
					return err
				}
			}
			got, err := core.FitFromSketches(merged, b.Catalog, cfg)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(got, want) {
				return fmt.Errorf("sketch-verify: FAIL: shards=%d order=%d: merged fit differs from single-sketch fit", shards, oi)
			}
			checks++
		}
		fmt.Fprintf(out, "sketch-verify: shards=%-3d OK (%d merge orders, fit byte-identical)\n",
			shards, len(mergeOrders(shards)))
	}
	if *stream {
		if err := verifyStreamedDeposit(out, samples, res, spec, tiers, b.Catalog, cfg, want); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "sketch-verify: OK (%d merged fits byte-identical to the single-pass fit)\n", checks)
	return nil
}

// tierSampleSliceScanner feeds an in-memory sample slice to
// core.SketchesFromScan in fixed-size batches, reusing its batch buffers
// between Scan calls exactly like the block scanner does — so it exercises
// the same aliasing contract the streamed segment scans rely on.
type tierSampleSliceScanner struct {
	tiers  []int
	dl, ul []float64
	batch  int
	at     int
	out    core.TierSampleBatch
}

func (s *tierSampleSliceScanner) Scan() bool {
	if s.at >= len(s.tiers) {
		return false
	}
	end := s.at + s.batch
	if end > len(s.tiers) {
		end = len(s.tiers)
	}
	s.out.UploadTier = append(s.out.UploadTier[:0], s.tiers[s.at:end]...)
	s.out.Download = append(s.out.Download[:0], s.dl[s.at:end]...)
	s.out.Upload = append(s.out.Upload[:0], s.ul[s.at:end]...)
	s.at = end
	return true
}

func (s *tierSampleSliceScanner) TierSamples() core.TierSampleBatch { return s.out }
func (s *tierSampleSliceScanner) Err() error                        { return nil }

// verifyStreamedDeposit checks the -stream half of the contract: depositing
// the tier samples through core.SketchesFromScan at several batch sizes
// must rebuild bit-identical sketches — and therefore a bit-identical
// refit — regardless of how the stream was batched.
func verifyStreamedDeposit(out io.Writer, samples []core.Sample, res *core.Result, spec core.SketchSpec, tiers int, cat *plans.Catalog, cfg core.Config, want *core.Result) error {
	tierOf := make([]int, len(samples))
	dl := make([]float64, len(samples))
	ul := make([]float64, len(samples))
	for i, sm := range samples {
		tierOf[i] = res.Assignments[i].UploadTier
		dl[i] = sm.Download
		ul[i] = sm.Upload
	}
	// Fresh pre-fit reference: the fit lazily materializes float views
	// inside the sketches it reads, so the earlier `single` no longer
	// DeepEquals an untouched deposit even though the masses are identical.
	single, err := core.SketchesFromResult(res, samples, spec)
	if err != nil {
		return err
	}
	batches := []int{1, 513, 4096, len(samples) + 1}
	for _, batch := range batches {
		got, err := core.SketchesFromScan(spec, tiers,
			&tierSampleSliceScanner{tiers: tierOf, dl: dl, ul: ul, batch: batch})
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, single) {
			return fmt.Errorf("sketch-verify: FAIL: streamed deposit at batch %d differs from single-pass sketches", batch)
		}
		fit, err := core.FitFromSketches(got, cat, cfg)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(fit, want) {
			return fmt.Errorf("sketch-verify: FAIL: streamed-deposit fit at batch %d differs from single-pass fit", batch)
		}
	}
	fmt.Fprintf(out, "sketch-verify: streamed deposits OK (batches %v rebuild sketches and fit bit-identically)\n", batches)
	return nil
}

// verifyStatsLevel checks the stats-layer half of the contract: FitGMM's
// single-pass fast path and FitGMMSketch over sharded-merged masses on the
// identical grid.
func verifyStatsLevel(out io.Writer, xs []float64, bins int, shardCounts []int) error {
	// Below stats' fast-fit threshold FitGMM takes the exact path and the
	// raw-vs-sketch comparison is vacuous — the caller must supply enough
	// samples for the contract under test to engage.
	const fastFitMinN = 4096
	if len(xs) < fastFitMinN {
		return fmt.Errorf("sketch-verify: only %d upload samples; need >= %d for the -fast path (raise -scale)", len(xs), fastFitMinN)
	}
	gcfg := stats.GMMConfig{FastFit: true, Bins: bins}
	const k = 3
	want, err := stats.FitGMM(xs, k, gcfg)
	if err != nil {
		return err
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if bins <= 0 {
		bins = stats.DefaultSketchBins
	}
	for _, shards := range shardCounts {
		parts := make([]*stats.Sketch, shards)
		for i := range parts {
			if parts[i], err = stats.NewSketch(lo, hi, bins); err != nil {
				return err
			}
		}
		for i, x := range xs {
			parts[i%shards].Observe(x)
		}
		for oi, order := range mergeOrders(shards) {
			merged, err := stats.NewSketch(lo, hi, bins)
			if err != nil {
				return err
			}
			for _, pi := range order {
				if err := merged.Merge(parts[pi]); err != nil {
					return err
				}
			}
			got, err := stats.FitGMMSketch(merged, k, gcfg)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(got, want) {
				return fmt.Errorf("sketch-verify: FAIL: stats level: shards=%d order=%d: sketch GMM differs from single-pass -fast GMM", shards, oi)
			}
		}
	}
	fmt.Fprintf(out, "sketch-verify: stats level OK (FitGMM -fast ≡ FitGMMSketch at every shard count)\n")
	return nil
}

// mergeOrders returns deterministic permutations of 0..n-1: identity,
// reversed, and an odd-stride interleave.
func mergeOrders(n int) [][]int {
	id := make([]int, n)
	rev := make([]int, n)
	for i := 0; i < n; i++ {
		id[i] = i
		rev[i] = n - 1 - i
	}
	if n == 1 {
		return [][]int{id}
	}
	step := 5
	for step%n == 0 {
		step++
	}
	stride := make([]int, 0, n)
	seen := make([]bool, n)
	at := 0
	for len(stride) < n {
		for seen[at] {
			at = (at + 1) % n
		}
		stride = append(stride, at)
		seen[at] = true
		at = (at + step) % n
	}
	return [][]int{id, rev, stride}
}
