// The stream-verify subcommand is the CI gate for the streaming block-scan
// contract (DESIGN.md §14):
//
//	speedctx stream-verify [-rows N]
//
// It synthesizes a deterministic ingest row set spanning two cities, seals
// it into {1, 3}-segment .sxc layouts, and fails unless every streamed
// consumer of those segments is byte-identical to its materialized
// reference at every scan batch size and fold parallelism:
//
//   - tiles: folding the segments through BlockScanner batches into a
//     tilequery.Index renders the same JSON as one in-memory AddRows fold,
//     and so does a fold over the post-compaction snapshot;
//   - sketches: streaming per-city tier samples through
//     core.SketchesFromScan rebuilds bit-identical TierSketches however the
//     rows were split across segments or batches;
//   - compaction: every segment split compacts to the same output bytes at
//     every scan parallelism and batch size.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"time"

	"speedctx/internal/core"
	"speedctx/internal/dataset"
	"speedctx/internal/ingest"
	"speedctx/internal/opendata"
	"speedctx/internal/plans"
	"speedctx/internal/tilequery"
)

// svTileSelection mirrors the ingest tile layer's pruned projection: six of
// the eleven ingest columns, no sketch sections.
var svTileSelection = dataset.SnapshotSelection{
	Ingest: dataset.Cols(
		dataset.IngestColUserID, dataset.IngestColCity,
		dataset.IngestColDownload, dataset.IngestColUpload,
		dataset.IngestColLatency, dataset.IngestColTier,
	),
}

// svSampleSelection mirrors the sketch-rebin projection: the four columns
// the per-city tier-sample deposit consumes.
var svSampleSelection = dataset.SnapshotSelection{
	Ingest: dataset.Cols(
		dataset.IngestColCity, dataset.IngestColDownload,
		dataset.IngestColUpload, dataset.IngestColUploadTier,
	),
}

func runStreamVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stream-verify", flag.ContinueOnError)
	nRows := fs.Int("rows", 6000, "synthetic ingest rows spread across the segment splits")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nRows < 100 {
		return fmt.Errorf("stream-verify: -rows must be >= 100")
	}

	cities := []string{"A", "B"}
	specs := make(map[string]ingest.CitySketchSpec, len(cities))
	for _, city := range cities {
		cat, ok := plans.ByCity(city)
		if !ok {
			return fmt.Errorf("stream-verify: unknown city %q", city)
		}
		specs[city] = ingest.CitySketchSpec{
			Spec:  core.SketchSpecFor(cat, 0),
			Tiers: len(cat.UploadTiers()),
		}
	}
	all := svSynthRows(*nRows, cities, specs)

	batches := []int{1, 4096, 1 << 30}
	pars := []int{1, 4, 0}
	splits := []int{1, 3}
	fmt.Fprintf(out, "stream-verify: %d rows, cities %v, splits %v, batches {1,4096,whole}, parallelism %v\n",
		*nRows, cities, splits, pars)

	root, err := os.MkdirTemp("", "speedctx-stream-verify-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	// One sealed layout per split; compaction gets fresh copies later since
	// it removes the segments it merges.
	layouts := make(map[int][]string, len(splits))
	for _, split := range splits {
		dir := filepath.Join(root, fmt.Sprintf("split-%d", split))
		paths, err := svWriteSegments(dir, all, split, specs)
		if err != nil {
			return err
		}
		layouts[split] = paths
	}

	if err := svVerifyTiles(out, all, layouts, batches, pars); err != nil {
		return err
	}
	if err := svVerifySketches(out, all, layouts, cities, specs, batches); err != nil {
		return err
	}
	if err := svVerifyCompaction(out, all, splits, specs, root); err != nil {
		return err
	}
	fmt.Fprintln(out, "stream-verify: OK")
	return nil
}

// svMix is splitmix64: the deterministic hash the row synthesizer draws
// every field from.
func svMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// svSynthRows builds n deterministic ingest rows across the given cities,
// including off-catalog (-1) upload tiers.
func svSynthRows(n int, cities []string, specs map[string]ingest.CitySketchSpec) []dataset.IngestRow {
	rows := make([]dataset.IngestRow, n)
	isps := []string{"AcmeNet", "Borealis", "CoastalFiber"}
	for i := range rows {
		h := svMix(uint64(i) + 0x5eed)
		city := cities[h%uint64(len(cities))]
		tiers := specs[city].Tiers
		up := int(svMix(h+1) % uint64(tiers+1))
		if up == tiers {
			up = -1 // off-catalog: counts in the upload sketch only
		}
		rows[i] = dataset.IngestRow{
			TestID:       int(h % 1_000_003),
			UserID:       int(svMix(h+2) % 1500),
			City:         city,
			ISP:          isps[svMix(h+3)%uint64(len(isps))],
			Timestamp:    time.Unix(1_600_000_000+int64(i)*7, int64(h%1_000_000_000)).UTC(),
			DownloadMbps: 1 + float64(svMix(h+4)%900_000)/1000,
			UploadMbps:   0.5 + float64(svMix(h+5)%35_000)/1000,
			LatencyMs:    2 + float64(svMix(h+6)%200_000)/1000,
			UploadTier:   up,
			Tier:         int(svMix(h+7) % uint64(tiers+1)),
			Confidence:   float64(svMix(h+8)%1000) / 1000,
		}
	}
	return rows
}

// svWriteSegments seals rows into `split` segment files under dir exactly
// the way the pipeline's batcher does: each segment's rows sorted into the
// stable seal order and encoded with its per-city sketch bundles (city
// ascending, upload sketch first, then the tier download sketches).
func svWriteSegments(dir string, rows []dataset.IngestRow, split int, specs map[string]ingest.CitySketchSpec) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	chunks := make([][]dataset.IngestRow, split)
	for i, row := range rows {
		chunks[i%split] = append(chunks[i%split], row)
	}
	paths := make([]string, split)
	for si, chunk := range chunks {
		sorted := append([]dataset.IngestRow(nil), chunk...)
		dataset.SortIngestRows(sorted)
		sketches := make(map[string]*core.TierSketches)
		for _, row := range sorted {
			ts, ok := sketches[row.City]
			if !ok {
				spec := specs[row.City]
				var err error
				if ts, err = core.NewTierSketches(spec.Spec, spec.Tiers); err != nil {
					return nil, err
				}
				sketches[row.City] = ts
			}
			ts.AddSample(row.UploadTier, row.DownloadMbps, row.UploadMbps)
		}
		cities := make([]string, 0, len(sketches))
		for city := range sketches {
			cities = append(cities, city)
		}
		sort.Strings(cities)
		var bundles []dataset.SketchBundle
		for _, city := range cities {
			ts := sketches[city]
			bundles = append(bundles, dataset.SketchBundle{City: city, Tier: dataset.UploadSketchTier, Sketch: ts.Upload})
			for ti, d := range ts.Downloads {
				bundles = append(bundles, dataset.SketchBundle{City: city, Tier: ti, Sketch: d})
			}
		}
		buf, err := dataset.EncodeIngestSegmentSketches(dataset.ColumnizeIngest(sorted), bundles)
		if err != nil {
			return nil, err
		}
		paths[si] = filepath.Join(dir, fmt.Sprintf("seg-%08d.sxc", si))
		if err := os.WriteFile(paths[si], buf, 0o644); err != nil {
			return nil, err
		}
	}
	return paths, nil
}

// svTileRows is the materialized tile row view of the synthesized set — the
// reference every streamed fold must reproduce.
func svTileRows(rows []dataset.IngestRow) *tilequery.Rows {
	r := &tilequery.Rows{
		UserID:   make([]int, len(rows)),
		City:     make([]string, len(rows)),
		Download: make([]float64, len(rows)),
		Upload:   make([]float64, len(rows)),
		Latency:  make([]float64, len(rows)),
		Tier:     make([]int, len(rows)),
	}
	for i, row := range rows {
		r.UserID[i] = row.UserID
		r.City[i] = row.City
		r.Download[i] = row.DownloadMbps
		r.Upload[i] = row.UploadMbps
		r.Latency[i] = row.LatencyMs
		r.Tier[i] = row.Tier
	}
	return r
}

// svRenderIndex renders the index's zoom-16 and zoom-12 tiles as JSON.
func svRenderIndex(ix *tilequery.Index) ([]byte, error) {
	var buf []byte
	for _, zoom := range []int{opendata.TileZoom, 12} {
		tiles, err := ix.Tiles(tilequery.Query{Zoom: zoom})
		if err != nil {
			return nil, err
		}
		if buf, err = tilequery.AppendTilesJSON(buf, zoom, tiles, ""); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// svFoldFiles streams each segment file into the index through a bounded
// block scan.
func svFoldFiles(ix *tilequery.Index, paths []string, batchRows int) error {
	for _, path := range paths {
		src, err := dataset.OpenFileSource(path)
		if err != nil {
			return err
		}
		sc, err := dataset.NewBlockScanner(src, svTileSelection, batchRows)
		if err != nil {
			src.Close()
			return err
		}
		_, err = ix.AddScan(sc)
		src.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

func svVerifyTiles(out io.Writer, all []dataset.IngestRow, layouts map[int][]string, batches, pars []int) error {
	ref := tilequery.NewIndex(tilequery.Config{Parallelism: 1})
	if _, err := ref.AddRows(svTileRows(all)); err != nil {
		return err
	}
	want, err := svRenderIndex(ref)
	if err != nil {
		return err
	}
	checks := 0
	for split, paths := range layouts {
		for _, batch := range batches {
			for _, par := range pars {
				ix := tilequery.NewIndex(tilequery.Config{Parallelism: par})
				if err := svFoldFiles(ix, paths, batch); err != nil {
					return err
				}
				got, err := svRenderIndex(ix)
				if err != nil {
					return err
				}
				if !bytes.Equal(got, want) {
					return fmt.Errorf("stream-verify: FAIL: tiles: split=%d batch=%d par=%d differs from materialized fold", split, batch, par)
				}
				checks++
			}
		}
	}
	fmt.Fprintf(out, "stream-verify: tiles OK (%d streamed folds byte-identical to the in-memory fold, %d bytes)\n", checks, len(want))
	return nil
}

// svCityScanner adapts a segment block scan into core.TierSampleScanner for
// one city, mirroring the ingest rebin fallback's filter.
type svCityScanner struct {
	sc   *dataset.BlockScanner
	city string
	out  core.TierSampleBatch
}

func (a *svCityScanner) Scan() bool {
	for a.sc.Scan() {
		b := a.sc.Batch()
		if b.Kind != dataset.SectionIngest || b.Rows == 0 {
			continue
		}
		g := b.Ingest
		a.out.UploadTier = a.out.UploadTier[:0]
		a.out.Download = a.out.Download[:0]
		a.out.Upload = a.out.Upload[:0]
		for i, city := range g.City {
			if city != a.city {
				continue
			}
			a.out.UploadTier = append(a.out.UploadTier, g.UploadTier[i])
			a.out.Download = append(a.out.Download, g.Download[i])
			a.out.Upload = append(a.out.Upload, g.Upload[i])
		}
		return true
	}
	return false
}

func (a *svCityScanner) TierSamples() core.TierSampleBatch { return a.out }
func (a *svCityScanner) Err() error                        { return a.sc.Err() }

func svVerifySketches(out io.Writer, all []dataset.IngestRow, layouts map[int][]string, cities []string, specs map[string]ingest.CitySketchSpec, batches []int) error {
	// Reference: one AddSample pass per city over the whole row set.
	refs := make(map[string]*core.TierSketches, len(cities))
	for _, city := range cities {
		spec := specs[city]
		ts, err := core.NewTierSketches(spec.Spec, spec.Tiers)
		if err != nil {
			return err
		}
		refs[city] = ts
	}
	for _, row := range all {
		refs[row.City].AddSample(row.UploadTier, row.DownloadMbps, row.UploadMbps)
	}
	checks := 0
	for split, paths := range layouts {
		for _, batch := range batches {
			for _, city := range cities {
				spec := specs[city]
				merged, err := core.NewTierSketches(spec.Spec, spec.Tiers)
				if err != nil {
					return err
				}
				for _, path := range paths {
					src, err := dataset.OpenFileSource(path)
					if err != nil {
						return err
					}
					sc, err := dataset.NewBlockScanner(src, svSampleSelection, batch)
					if err != nil {
						src.Close()
						return err
					}
					seg, err := core.SketchesFromScan(spec.Spec, spec.Tiers, &svCityScanner{sc: sc, city: city})
					src.Close()
					if err != nil {
						return fmt.Errorf("%s: %w", path, err)
					}
					if err := merged.Merge(seg); err != nil {
						return err
					}
				}
				if !reflect.DeepEqual(merged, refs[city]) {
					return fmt.Errorf("stream-verify: FAIL: sketches: split=%d batch=%d city=%s streamed deposit differs from AddSample pass", split, batch, city)
				}
				checks++
			}
		}
	}
	fmt.Fprintf(out, "stream-verify: sketches OK (%d streamed deposits bit-identical to the single AddSample pass)\n", checks)
	return nil
}

func svVerifyCompaction(out io.Writer, all []dataset.IngestRow, splits []int, specs map[string]ingest.CitySketchSpec, root string) error {
	// (par, batchRows) knob settings compaction must be invariant under.
	knobs := [][2]int{{1, 1}, {4, 4096}, {0, 0}}
	var want []byte
	checks := 0
	for _, split := range splits {
		for _, knob := range knobs {
			dir := filepath.Join(root, fmt.Sprintf("compact-%d-%d-%d", split, knob[0], knob[1]))
			if _, err := svWriteSegments(dir, all, split, specs); err != nil {
				return err
			}
			path, err := ingest.CompactBatched(dir, knob[0], knob[1])
			if err != nil {
				return err
			}
			got, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			if want == nil {
				want = got
				// The canonical snapshot must itself stream back into the
				// same tiles as the raw segments: fold it once via the block
				// scanner and compare against the in-memory reference.
				ref := tilequery.NewIndex(tilequery.Config{Parallelism: 1})
				if _, err := ref.AddRows(svTileRows(all)); err != nil {
					return err
				}
				wantTiles, err := svRenderIndex(ref)
				if err != nil {
					return err
				}
				ix := tilequery.NewIndex(tilequery.Config{Parallelism: 1})
				if err := svFoldFiles(ix, []string{path}, 4096); err != nil {
					return err
				}
				gotTiles, err := svRenderIndex(ix)
				if err != nil {
					return err
				}
				if !bytes.Equal(gotTiles, wantTiles) {
					return fmt.Errorf("stream-verify: FAIL: compaction: tiles folded from %s differ from the in-memory fold", ingest.CompactedName)
				}
			} else if !bytes.Equal(got, want) {
				return fmt.Errorf("stream-verify: FAIL: compaction: split=%d par=%d batch=%d produced different %s bytes", split, knob[0], knob[1], ingest.CompactedName)
			}
			checks++
		}
	}
	fmt.Fprintf(out, "stream-verify: compaction OK (%d compactions byte-identical across splits and scan knobs, %d bytes)\n", checks, len(want))
	return nil
}
