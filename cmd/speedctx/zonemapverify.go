// The zonemap-verify subcommand is the CI gate for the zone-map pushdown
// contract (DESIGN.md §15):
//
//	speedctx zonemap-verify [-rows N]
//
// It synthesizes the stream-verify row set, compacts it twice — once
// quadkey-clustered into a zoned v3 snapshot, once in canonical order into
// a v2 snapshot — and renders a one-city bbox query from both files across
// the full identity matrix: {clustered, unclustered} x {pushdown on, off}
// x fold parallelism {1, 4, all} x scan batch {1, 4096, whole}. Every one
// of the renderings must be byte-identical to the in-memory reference
// fold, and the clustered+pushdown cells must actually have skipped row
// groups (the unclustered and predicate-free cells must have skipped
// none). Any divergence — wrong bytes, a skip where none is allowed, or
// no skips where the zone maps guarantee them — fails the gate.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"speedctx/internal/core"
	"speedctx/internal/dataset"
	"speedctx/internal/ingest"
	"speedctx/internal/opendata"
	"speedctx/internal/plans"
	"speedctx/internal/tilequery"
)

func runZonemapVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("zonemap-verify", flag.ContinueOnError)
	nRows := fs.Int("rows", 6000, "synthetic ingest rows spread across the compacted segments")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nRows < 100 {
		return fmt.Errorf("zonemap-verify: -rows must be >= 100")
	}

	cities := []string{"A", "B"}
	specs := make(map[string]ingest.CitySketchSpec, len(cities))
	for _, city := range cities {
		cat, ok := plans.ByCity(city)
		if !ok {
			return fmt.Errorf("zonemap-verify: unknown city %q", city)
		}
		specs[city] = ingest.CitySketchSpec{
			Spec:  core.SketchSpecFor(cat, 0),
			Tiers: len(cat.UploadTiers()),
		}
	}
	all := svSynthRows(*nRows, cities, specs)

	root, err := os.MkdirTemp("", "speedctx-zonemap-verify-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	// Two compactions of the same segments: quadkey-clustered zoned v3 and
	// canonical-order v2. Same row multiset, different layouts.
	layouts := []struct {
		name      string
		clustered bool
		path      string
	}{{name: "clustered", clustered: true}, {name: "unclustered"}}
	for i := range layouts {
		dir := filepath.Join(root, layouts[i].name)
		if _, err := svWriteSegments(dir, all, 3, specs); err != nil {
			return err
		}
		opts := ingest.CompactOptions{}
		if layouts[i].clustered {
			opts = ingest.CompactOptions{ClusterZoom: opendata.TileZoom, ZoneBlockRows: 512}
		}
		if layouts[i].path, err = ingest.CompactWith(dir, opts); err != nil {
			return err
		}
	}

	// One-neighborhood bbox around city A: the clustered file's zone maps
	// must prove city B's (and most of A's) row groups irrelevant.
	c := opendata.CityCenter(cities[0])
	rng, err := opendata.TileRangeForBBox(c.Lat-0.11, c.Lon-0.11, c.Lat+0.11, c.Lon+0.11, opendata.TileZoom)
	if err != nil {
		return err
	}
	q := tilequery.Query{Zoom: opendata.TileZoom, Range: &rng}

	// Reference: the in-memory fold of all rows, queried through the bbox.
	ref := tilequery.NewIndex(tilequery.Config{Parallelism: 1})
	if _, err := ref.AddRows(svTileRows(all)); err != nil {
		return err
	}
	refTiles, err := ref.Tiles(q)
	if err != nil {
		return err
	}
	want, err := tilequery.AppendTilesJSON(nil, q.Zoom, refTiles, "")
	if err != nil {
		return err
	}

	batches := []int{1, 4096, 1 << 30}
	pars := []int{1, 4, 0}
	fmt.Fprintf(out, "zonemap-verify: %d rows, bbox over city %s, batches {1,4096,whole}, parallelism %v\n",
		*nRows, cities[0], pars)

	checks := 0
	for _, layout := range layouts {
		for _, push := range []bool{false, true} {
			var skips, scans int
			for _, batch := range batches {
				for _, par := range pars {
					cfg := tilequery.Config{Parallelism: par}
					sel := svTileSelection
					if push {
						sel.Predicate = cfg.Pushdown(q.Range)
					}
					src, err := dataset.OpenFileSource(layout.path)
					if err != nil {
						return err
					}
					sc, err := dataset.NewBlockScanner(src, sel, batch)
					if err != nil {
						src.Close()
						return err
					}
					ix := tilequery.NewIndex(cfg)
					_, err = ix.AddScan(sc)
					ctr := sc.Counters()
					src.Close()
					if err != nil {
						return err
					}
					tiles, err := ix.Tiles(q)
					if err != nil {
						return err
					}
					got, err := tilequery.AppendTilesJSON(nil, q.Zoom, tiles, "")
					if err != nil {
						return err
					}
					if !bytes.Equal(got, want) {
						return fmt.Errorf("zonemap-verify: FAIL: %s push=%v batch=%d par=%d renders different bytes", layout.name, push, batch, par)
					}
					skips += ctr.BlocksSkipped
					scans += ctr.BlocksScanned
					checks++
				}
			}
			switch {
			case layout.clustered && push && skips == 0:
				return fmt.Errorf("zonemap-verify: FAIL: clustered pushdown skipped no row groups (scanned %d)", scans)
			case !(layout.clustered && push) && skips > 0:
				return fmt.Errorf("zonemap-verify: FAIL: %s push=%v skipped %d row groups, want 0", layout.name, push, skips)
			case layout.clustered && scans == 0:
				return fmt.Errorf("zonemap-verify: FAIL: clustered scan bound no zone-mapped groups")
			}
			fmt.Fprintf(out, "zonemap-verify: %s push=%v OK (%d groups scanned, %d skipped across the matrix)\n",
				layout.name, push, scans, skips)
		}
	}
	fmt.Fprintf(out, "zonemap-verify: OK (%d renderings byte-identical to the in-memory fold, %d bytes)\n", checks, len(want))
	return nil
}
