package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// BenchmarkAllSnapshot measures the complete `speedctx all` run against
// the snapshot store: cold (empty cache — generate every city, write
// snapshots) versus warm (populated cache — load .sxc files, skipping
// generation and parsing). The cold/warm gap is the end-to-end value of
// the PR 5 ingest layer; both runs produce byte-identical output
// (TestAllSnapshotOutputIdentical).
func BenchmarkAllSnapshot(b *testing.B) {
	root := b.TempDir()
	args := func(dir string) []string {
		return []string{"all", "-scale", "0.005", "-snapshot-dir", dir}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dir := filepath.Join(root, fmt.Sprintf("cold%d", i))
			if err := run(args(dir), io.Discard); err != nil {
				b.Fatal(err)
			}
			os.RemoveAll(dir)
		}
	})
	warmDir := filepath.Join(root, "warm")
	if err := run(args(warmDir), io.Discard); err != nil {
		b.Fatal(err)
	}
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := run(args(warmDir), io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}
