# Developer entry points. `make check` is the PR gate: it must stay green
# on every change (vet + build + race-clean tests + a benchmark smoke that
# proves the perf harness still runs).

GO ?= go

.PHONY: check vet build test race bench bench-smoke bench-baseline bench-compare snapshot-verify

check: vet build race bench-smoke bench-compare snapshot-verify

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs one iteration of the parallel stats and dataset
# generation benchmarks — enough to catch a broken benchmark without paying
# for a full measurement run.
bench-smoke:
	$(GO) test -run NONE -bench 'KDEGrid|FitGMM' -benchtime 1x ./internal/stats/
	$(GO) test -run NONE -bench 'GenerateOokla/n=10000$$|WriteOoklaCSV|ReadOoklaCSV/n=100000|OoklaIngest/n=100000/src=(csv|snapshot)' -benchtime 1x ./internal/dataset/

# bench runs the full stats + generation benchmark suite with memory stats.
# The n=1000000 generation sizes need more than go test's default 10m.
bench:
	$(GO) test -run NONE -bench 'KDEGrid|KDEPeaks|FitGMM' -benchmem ./internal/stats/
	$(GO) test -run NONE -bench 'GenerateOokla|GenerateMLab|WriteOoklaCSV|ReadOoklaCSV|OoklaIngest' -benchmem -timeout 60m ./internal/dataset/
	$(GO) test -run NONE -bench 'AllSnapshot' -benchmem -timeout 60m ./cmd/speedctx/

# bench-baseline records the perf trajectory file for this PR series:
# benchmark name -> ns/op. Compare future PRs against the committed
# BENCH_pr*.json files. The sub-second stats benches repeat 5 times and
# bench2json.sh keeps the per-bench minimum (noise on a shared VM only
# inflates samples). The multi-minute generation sizes run once — they pin
# large-n throughput, are stable run-to-run, and exist for the trajectory,
# not statistical precision.
bench-baseline:
	( $(GO) test -run NONE -bench 'KDEGrid|KDEPeaks|FitGMM' -benchtime 2x -count 5 ./internal/stats/ ; \
	  $(GO) test -run NONE -bench 'GenerateOokla|GenerateMLab|WriteOoklaCSV' -benchtime 1x -timeout 60m ./internal/dataset/ ; \
	  $(GO) test -run NONE -bench 'ReadOoklaCSV|OoklaIngest' -benchtime 1x -count 3 -timeout 60m ./internal/dataset/ ; \
	  $(GO) test -run NONE -bench 'AllSnapshot' -benchtime 1x -count 2 -timeout 60m ./cmd/speedctx/ ) \
		| scripts/bench2json.sh > BENCH_pr5.json
	@cat BENCH_pr5.json

# bench-compare gates the committed perf trajectory: fail if any benchmark
# shared with an earlier baseline regressed >10% (machine-normalized; see
# scripts/bench_compare.sh). The ingest entries (Read*/OoklaIngest/
# AllSnapshot) are new in BENCH_pr5 — future PRs gate against them.
bench-compare:
	scripts/bench_compare.sh BENCH_pr5.json BENCH_pr4.json BENCH_pr3.json BENCH_pr1.json

# snapshot-verify is the end-to-end identity gate for the snapshot store
# (DESIGN.md §10): a no-snapshot run, a cold-cache run (generate + write
# .sxc) and a warm-cache run (load .sxc, skipping generation) of
# `speedctx all` must be byte-identical. The tempdir is left behind on
# failure for inspection.
snapshot-verify:
	@dir=$$(mktemp -d) && \
	$(GO) run ./cmd/speedctx all -scale 0.005 > $$dir/plain.txt && \
	$(GO) run ./cmd/speedctx all -scale 0.005 -snapshot-dir $$dir/snaps > $$dir/cold.txt && \
	$(GO) run ./cmd/speedctx all -scale 0.005 -snapshot-dir $$dir/snaps > $$dir/warm.txt && \
	cmp $$dir/plain.txt $$dir/cold.txt && cmp $$dir/plain.txt $$dir/warm.txt && \
	rm -rf $$dir && echo "snapshot-verify: cold and warm snapshot runs byte-identical"
