# Developer entry points. `make check` is the PR gate: it must stay green
# on every change (vet + build + race-clean tests + a benchmark smoke that
# proves the perf harness still runs).

GO ?= go

.PHONY: check vet build test race bench bench-smoke bench-baseline bench-compare

check: vet build race bench-smoke bench-compare

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs one iteration of the parallel stats and dataset
# generation benchmarks — enough to catch a broken benchmark without paying
# for a full measurement run.
bench-smoke:
	$(GO) test -run NONE -bench 'KDEGrid|FitGMM' -benchtime 1x ./internal/stats/
	$(GO) test -run NONE -bench 'GenerateOokla/n=10000$$|WriteOoklaCSV' -benchtime 1x ./internal/dataset/

# bench runs the full stats + generation benchmark suite with memory stats.
# The n=1000000 generation sizes need more than go test's default 10m.
bench:
	$(GO) test -run NONE -bench 'KDEGrid|KDEPeaks|FitGMM' -benchmem ./internal/stats/
	$(GO) test -run NONE -bench 'GenerateOokla|GenerateMLab|WriteOoklaCSV' -benchmem -timeout 60m ./internal/dataset/

# bench-baseline records the perf trajectory file for this PR series:
# benchmark name -> ns/op. Compare future PRs against the committed
# BENCH_pr*.json files. The sub-second stats benches repeat 5 times and
# bench2json.sh keeps the per-bench minimum (noise on a shared VM only
# inflates samples). The multi-minute generation sizes run once — they pin
# large-n throughput, are stable run-to-run, and exist for the trajectory,
# not statistical precision.
bench-baseline:
	( $(GO) test -run NONE -bench 'KDEGrid|KDEPeaks|FitGMM' -benchtime 2x -count 5 ./internal/stats/ ; \
	  $(GO) test -run NONE -bench 'GenerateOokla|GenerateMLab|WriteOoklaCSV' -benchtime 1x -timeout 60m ./internal/dataset/ ) \
		| scripts/bench2json.sh > BENCH_pr4.json
	@cat BENCH_pr4.json

# bench-compare gates the committed perf trajectory: fail if any benchmark
# shared with an earlier baseline regressed >10% (machine-normalized; see
# scripts/bench_compare.sh). The generation entries are new in BENCH_pr4 —
# future PRs gate against them.
bench-compare:
	scripts/bench_compare.sh BENCH_pr4.json BENCH_pr3.json BENCH_pr1.json
