# Developer entry points. `make check` is the PR gate: it must stay green
# on every change (vet + build + race-clean tests + a benchmark smoke that
# proves the perf harness still runs).

GO ?= go

.PHONY: check vet build test race race-scan bench bench-smoke bench-baseline bench-compare snapshot-verify sketch-verify stream-verify tiles-verify zonemap-verify load-smoke

check: vet build race race-scan bench-smoke bench-compare snapshot-verify sketch-verify stream-verify tiles-verify zonemap-verify load-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-scan re-runs the streaming-scan packages under the race detector
# with scan parallelism forced through the parallel merge paths — the
# pooled batch buffers and per-file scanners of DESIGN.md §14 must stay
# race-clean when segments decode concurrently.
race-scan:
	$(GO) test -race ./internal/dataset/... ./internal/tilequery/... ./internal/ingest/...

# bench-smoke runs one iteration of the parallel stats and dataset
# generation benchmarks — enough to catch a broken benchmark without paying
# for a full measurement run.
bench-smoke:
	$(GO) test -run NONE -bench 'KDEGrid|FitGMM|SketchMerge' -benchtime 1x ./internal/stats/
	$(GO) test -run NONE -bench 'GenerateOokla/n=10000$$|WriteOoklaCSV|ReadOoklaCSV/n=100000|OoklaIngest/n=100000/src=(csv|snapshot)' -benchtime 1x ./internal/dataset/
	$(GO) test -run NONE -bench 'ClassifyOne|FitFromSketches' -benchtime 1x ./internal/core/
	$(GO) test -run NONE -bench 'IngestHTTPBatch64|ParseSubmission|ServerWarmRefresh|TilesHTTP' -benchtime 1x ./internal/ingest/
	$(GO) test -run NONE -bench 'TileAggregate/n=100000|TileQuery' -benchtime 1x ./internal/tilequery/

# bench runs the full stats + generation benchmark suite with memory stats.
# The n=1000000 generation sizes need more than go test's default 10m.
bench:
	$(GO) test -run NONE -bench 'KDEGrid|KDEPeaks|FitGMM|SketchMerge' -benchmem ./internal/stats/
	$(GO) test -run NONE -bench 'GenerateOokla|GenerateMLab|WriteOoklaCSV|ReadOoklaCSV|OoklaIngest' -benchmem -timeout 60m ./internal/dataset/
	$(GO) test -run NONE -bench 'AllSnapshot' -benchmem -timeout 60m ./cmd/speedctx/
	$(GO) test -run NONE -bench 'ClassifyOne|FitFromSketches' -benchmem ./internal/core/
	$(GO) test -run NONE -bench 'IngestHTTP|IngestPipelineSubmit|ParseSubmission|ServerWarmRefresh|TilesHTTP' -benchmem ./internal/ingest/
	$(GO) test -run NONE -bench 'TileScan|TileAggregate|TileQuery' -benchmem -timeout 30m ./internal/tilequery/

# bench-baseline records the perf trajectory file for this PR series:
# benchmark name -> ns/op. Compare future PRs against the committed
# BENCH_pr*.json files. The sub-second stats benches repeat 5 times and
# bench2json.sh keeps the per-bench minimum (noise on a shared VM only
# inflates samples). The multi-minute generation sizes run once — they pin
# large-n throughput, are stable run-to-run, and exist for the trajectory,
# not statistical precision.
bench-baseline:
	( $(GO) test -run NONE -bench 'KDEGrid|KDEPeaks|FitGMM|SketchMerge' -benchtime 2x -count 5 ./internal/stats/ ; \
	  $(GO) test -run NONE -bench 'GenerateOokla|GenerateMLab|WriteOoklaCSV' -benchtime 1x -timeout 60m ./internal/dataset/ ; \
	  $(GO) test -run NONE -bench 'ReadOoklaCSV|OoklaIngest' -benchtime 1x -count 3 -timeout 60m ./internal/dataset/ ; \
	  $(GO) test -run NONE -bench 'AllSnapshot' -benchtime 1x -count 2 -timeout 60m ./cmd/speedctx/ ; \
	  $(GO) test -run NONE -bench 'ClassifyOne' -benchtime 200000x -count 5 ./internal/core/ ; \
	  $(GO) test -run NONE -bench 'FitFromSketches' -benchtime 20x -count 5 ./internal/core/ ; \
	  $(GO) test -run NONE -bench 'IngestPipelineSubmit|ParseSubmission' -benchtime 200000x -count 3 ./internal/ingest/ ; \
	  $(GO) test -run NONE -bench 'ServerWarmRefresh' -benchtime 20x -count 5 ./internal/ingest/ ; \
	  $(GO) test -run NONE -bench 'IngestHTTP' -benchtime 3000x -count 3 ./internal/ingest/ ; \
	  $(GO) test -run NONE -bench 'TilesHTTP' -benchtime 2000x -count 3 ./internal/ingest/ ; \
	  $(GO) test -run NONE -bench 'TileScan' -benchtime 3x -count 3 -benchmem -timeout 30m ./internal/tilequery/ ; \
	  $(GO) test -run NONE -bench 'TileAggregate' -benchtime 10x -count 3 ./internal/tilequery/ ; \
	  $(GO) test -run NONE -bench 'TileQuery' -benchtime 200x -count 5 ./internal/tilequery/ ) \
		| scripts/bench2json.sh > BENCH_pr10.json
	@cat BENCH_pr10.json

# bench-compare gates the committed perf trajectory: fail if any benchmark
# shared with an earlier baseline regressed >10% (machine-normalized; see
# scripts/bench_compare.sh). The TileScanPushdown mode={full,push} entries
# — the headline of the zone-map predicate pushdown layer (DESIGN.md §15)
# — are new in BENCH_pr10; future PRs gate against them.
bench-compare:
	scripts/bench_compare.sh BENCH_pr10.json BENCH_pr9.json BENCH_pr8.json BENCH_pr7.json BENCH_pr6.json BENCH_pr5.json BENCH_pr4.json BENCH_pr3.json BENCH_pr1.json

# snapshot-verify is the end-to-end identity gate for the snapshot store
# (DESIGN.md §10): a no-snapshot run, a cold-cache run (generate + write
# .sxc) and a warm-cache run (load .sxc, skipping generation) of
# `speedctx all` must be byte-identical. The tempdir is left behind on
# failure for inspection.
snapshot-verify:
	@dir=$$(mktemp -d) && \
	$(GO) run ./cmd/speedctx all -scale 0.005 > $$dir/plain.txt && \
	$(GO) run ./cmd/speedctx all -scale 0.005 -snapshot-dir $$dir/snaps > $$dir/cold.txt && \
	$(GO) run ./cmd/speedctx all -scale 0.005 -snapshot-dir $$dir/snaps > $$dir/warm.txt && \
	cmp $$dir/plain.txt $$dir/cold.txt && cmp $$dir/plain.txt $$dir/warm.txt && \
	rm -rf $$dir && echo "snapshot-verify: cold and warm snapshot runs byte-identical"

# sketch-verify is the end-to-end determinism gate for mergeable sketches
# (DESIGN.md §12): a BST refit from bin-mass sketches sharded across
# {1,7,64} holders and merged in several orders must be byte-identical to
# the single-pass fast fit over the raw samples — the property the ingest
# refresh loop's correctness rests on. -stream extends the sweep to the
# batched streamed-deposit path (DESIGN.md §14).
sketch-verify:
	$(GO) run ./cmd/speedctx sketch-verify -stream

# stream-verify is the end-to-end identity gate for the streaming
# block-scan layer (DESIGN.md §14): a synthesized ingest row set sealed
# into {1,3}-segment .sxc layouts must produce byte-identical tiles,
# bit-identical sketches, and byte-identical compacted snapshots whether
# consumed streamed (at batch sizes {1, 4096, whole-file} and fold
# parallelism {1, 4, all}) or fully materialized.
stream-verify:
	$(GO) run ./cmd/speedctx stream-verify

# tiles-verify is the end-to-end identity gate for the geo-tiled aggregate
# query layer (DESIGN.md §13): one city's tiles rendered from memory and
# from a pruned .sxc snapshot scan, across parallelism {1,4,all}, cold and
# through a warm result cache, must be byte-identical — and the snapshot
# scan must actually have skipped the unrequested columns. It also pins
# the streamed two-pass scan→classify→fold path (DESIGN.md §14) to the
# same bytes at batch sizes {1, 4096, whole-file}.
tiles-verify:
	$(GO) run ./cmd/speedctx tiles -verify -scale 0.002

# zonemap-verify is the end-to-end identity gate for the zone-map predicate
# pushdown layer (DESIGN.md §15): a one-city bbox query rendered from a
# quadkey-clustered zoned snapshot and from a canonical v2 snapshot, with
# pushdown on and off, across fold parallelism {1,4,all} and scan batch
# {1, 4096, whole-file}, must be byte-identical to the in-memory fold —
# and the clustered+pushdown scans must actually have skipped row groups.
zonemap-verify:
	$(GO) run ./cmd/speedctx zonemap-verify

# load-smoke is the serving-path gate: a bounded self-hosted run of the
# load generator through the real HTTP ingest server must complete with
# zero errors at >= 100k classified rows/sec (DESIGN.md §11). The floor is
# ~3x below what the single-core CI box sustains, so a failure means the
# hot path broke, not that the machine was busy.
load-smoke:
	$(GO) run ./cmd/speedctx load -rows 60000 -conns 4 -batch 64 -min-rate 100000
