# Developer entry points. `make check` is the PR gate: it must stay green
# on every change (vet + build + race-clean tests + a benchmark smoke that
# proves the perf harness still runs).

GO ?= go

.PHONY: check vet build test race bench bench-smoke bench-baseline bench-compare

check: vet build race bench-smoke bench-compare

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs one iteration of the parallel stats benchmarks — enough
# to catch a broken benchmark without paying for a full measurement run.
bench-smoke:
	$(GO) test -run NONE -bench 'KDEGrid|FitGMM' -benchtime 1x ./internal/stats/

# bench runs the full parallel stats benchmark suite with memory stats.
bench:
	$(GO) test -run NONE -bench 'KDEGrid|KDEPeaks|FitGMM' -benchmem ./internal/stats/

# bench-baseline records the perf trajectory file for this PR series:
# benchmark name -> ns/op. Compare future PRs against the committed
# BENCH_pr*.json files.
bench-baseline:
	$(GO) test -run NONE -bench 'KDEGrid|KDEPeaks|FitGMM' -benchtime 2x ./internal/stats/ \
		| scripts/bench2json.sh > BENCH_pr3.json
	@cat BENCH_pr3.json

# bench-compare gates the committed perf trajectory: fail if any benchmark
# shared with the PR 1 baseline regressed >10% (machine-normalized; see
# scripts/bench_compare.sh).
bench-compare:
	scripts/bench_compare.sh BENCH_pr3.json BENCH_pr1.json
