// Bench harness: one benchmark per table and figure of the paper, plus the
// ablations DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its experiment from the shared suite (scaled
// synthetic datasets, deterministic seed) and reports the headline numbers
// as custom metrics, so the paper-vs-measured comparison in EXPERIMENTS.md
// is reproducible from this one command.
package speedctx_test

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"speedctx/internal/analysis"
	"speedctx/internal/core"
	"speedctx/internal/device"
	"speedctx/internal/experiments"
	"speedctx/internal/report"
	"speedctx/internal/speedtest"
)

// benchScale sizes the benchmark datasets: 5% of the paper's row counts
// (~10.7k Ookla rows for City A) keeps the full harness under a few minutes
// while giving each per-bin median a stable sample.
const benchScale = 0.05

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
)

func suite() *experiments.Suite {
	benchOnce.Do(func() {
		benchSuite = experiments.NewSuite(benchScale, 2021)
	})
	return benchSuite
}

func mustTable(b *testing.B, t *report.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if err := t.Write(io.Discard); err != nil {
		b.Fatal(err)
	}
}

func mustFigure(b *testing.B, f *report.Figure, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if len(f.Series) == 0 {
		b.Fatalf("figure %s is empty", f.ID)
	}
	if err := f.Write(io.Discard); err != nil {
		b.Fatal(err)
	}
}

func cityA(b *testing.B) *experiments.CityBundle {
	b.Helper()
	bundle, err := suite().City("A")
	if err != nil {
		b.Fatal(err)
	}
	return bundle
}

func ooklaA(b *testing.B) *analysis.Ookla {
	b.Helper()
	a, err := cityA(b).OoklaAnalysis()
	if err != nil {
		b.Fatal(err)
	}
	return a
}

func androidA(b *testing.B) *analysis.Ookla {
	b.Helper()
	a, err := cityA(b).AndroidAnalysis()
	if err != nil {
		b.Fatal(err)
	}
	return a
}

func BenchmarkTable1DatasetSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := suite().Table1()
		mustTable(b, t, err)
	}
}

func BenchmarkTable2MBAAccuracy(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		t, err := suite().Table2()
		mustTable(b, t, err)
		bundle := cityA(b)
		_, ev, err := bundle.MBAFit()
		if err != nil {
			b.Fatal(err)
		}
		acc = ev.UploadAccuracy()
	}
	b.ReportMetric(100*acc, "stateA_upload_accuracy_%")
}

func BenchmarkTable3UploadClusters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := suite().Table3()
		mustTable(b, t, err)
	}
}

func BenchmarkTable4DownloadClusterMeans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := suite().Table4()
		mustTable(b, t, err)
	}
}

func BenchmarkTables567UploadClusters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, err := suite().Tables567()
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range ts {
			mustTable(b, t, nil)
		}
	}
}

func BenchmarkFigure1MotivatingCDF(b *testing.B) {
	var medAll, medT1 float64
	for i := 0; i < b.N; i++ {
		f, err := suite().Figure1()
		mustFigure(b, f, err)
		a := ooklaA(b)
		mc := a.Motivating()
		medAll = a.MedianDownload()
		medT1 = analysis.Group{Values: mc.Tier1}.Median()
	}
	b.ReportMetric(medAll, "uncontextualized_median_mbps")
	b.ReportMetric(medT1, "tier1_median_mbps")
}

func BenchmarkFigure2ConsistencyFactor(b *testing.B) {
	var mUp, mDown float64
	for i := 0; i < b.N; i++ {
		f, err := suite().Figure2()
		mustFigure(b, f, err)
		down, up := ooklaA(b).ConsistencyFactors(device.IOS, 5)
		if len(down) > 0 {
			mDown = down[len(down)/2]
			mUp = up[len(up)/2]
		}
	}
	b.ReportMetric(mDown, "download_cf_median")
	b.ReportMetric(mUp, "upload_cf_median")
}

func BenchmarkFigure4MBAUploadKDE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := suite().Figure4()
		mustFigure(b, f, err)
	}
}

func BenchmarkFigure5MBADownloadKDE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := suite().Figure5()
		mustFigure(b, f, err)
	}
}

func BenchmarkFigure6CityUploadKDE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := suite().Figure6()
		mustFigure(b, f, err)
	}
}

func BenchmarkFigure7AndroidDownloadKDE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := suite().Figure7()
		mustFigure(b, f, err)
	}
}

func BenchmarkFigure8AlphaConsistency(b *testing.B) {
	var med float64
	for i := 0; i < b.N; i++ {
		f, err := suite().Figure8()
		mustFigure(b, f, err)
		alphas, err := ooklaA(b).AlphaPerUserMonth(5)
		if err != nil {
			b.Fatal(err)
		}
		med = alphas[len(alphas)/2]
	}
	b.ReportMetric(med, "alpha_median")
}

func BenchmarkFigure9aAccessType(b *testing.B) {
	var mw, me float64
	for i := 0; i < b.N; i++ {
		f, err := suite().Figure9("a")
		mustFigure(b, f, err)
		gs := ooklaA(b).ByAccessType()
		mw, me = gs[0].Median(), gs[1].Median()
	}
	b.ReportMetric(mw, "wifi_median_norm")
	b.ReportMetric(me, "ethernet_median_norm")
}

func BenchmarkFigure9bWiFiBand(b *testing.B) {
	var m24, m5 float64
	for i := 0; i < b.N; i++ {
		f, err := suite().Figure9("b")
		mustFigure(b, f, err)
		gs := androidA(b).ByBand()
		m24, m5 = gs[0].Median(), gs[1].Median()
	}
	b.ReportMetric(m24, "band24_median_norm")
	b.ReportMetric(m5, "band5_median_norm")
}

func BenchmarkFigure9cRSSI(b *testing.B) {
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		f, err := suite().Figure9("c")
		mustFigure(b, f, err)
		gs := androidA(b).ByRSSIBin()
		lo, hi = gs[0].Median(), gs[len(gs)-1].Median()
	}
	b.ReportMetric(lo, "rssi_worst_median_norm")
	b.ReportMetric(hi, "rssi_best_median_norm")
}

func BenchmarkFigure9dMemory(b *testing.B) {
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		f, err := suite().Figure9("d")
		mustFigure(b, f, err)
		gs := androidA(b).ByMemoryBin()
		lo, hi = gs[0].Median(), gs[len(gs)-1].Median()
	}
	b.ReportMetric(lo, "mem_below2gb_median_norm")
	b.ReportMetric(hi, "mem_above6gb_median_norm")
}

func BenchmarkFigure10LocalBottleneck(b *testing.B) {
	var best, bott float64
	for i := 0; i < b.N; i++ {
		f, err := suite().Figure10()
		mustFigure(b, f, err)
		gs := androidA(b).BestVsBottleneck()
		best, bott = gs[0].Median(), gs[1].Median()
	}
	b.ReportMetric(best, "best_median_norm")
	b.ReportMetric(bott, "bottleneck_median_norm")
}

func BenchmarkFigure11TimeOfDayVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := suite().Figure11()
		mustFigure(b, f, err)
	}
}

func BenchmarkFigure12TimeOfDayPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, tg := range []int{1, 2} {
			f, err := suite().Figure12(tg)
			mustFigure(b, f, err)
		}
	}
}

func BenchmarkFigure13VendorGap(b *testing.B) {
	var tier4Ratio float64
	for i := 0; i < b.N; i++ {
		figs, err := suite().Figure13()
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range figs {
			mustFigure(b, f, nil)
		}
		bundle := cityA(b)
		oa, err := bundle.OoklaAnalysis()
		if err != nil {
			b.Fatal(err)
		}
		ma, err := bundle.MLabAnalysis()
		if err != nil {
			b.Fatal(err)
		}
		vts, err := analysis.VendorComparison(oa, ma)
		if err != nil {
			b.Fatal(err)
		}
		if mm := vts[1].MLab.Median(); mm > 0 {
			tier4Ratio = vts[1].Ookla.Median() / mm
		}
	}
	b.ReportMetric(tier4Ratio, "tier4_ookla_over_mlab")
}

func BenchmarkAppendixFigures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs14, err := suite().Figure14()
		if err != nil {
			b.Fatal(err)
		}
		figs15, err := suite().Figure15()
		if err != nil {
			b.Fatal(err)
		}
		figsDl, err := suite().Figures161718()
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range figs14 {
			mustFigure(b, f, nil)
		}
		for _, f := range figs15 {
			mustFigure(b, f, nil)
		}
		for _, f := range figsDl {
			mustFigure(b, f, nil)
		}
	}
}

func BenchmarkAblationGMMvsKMeans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := suite().AblationGMMvsKMeans()
		mustTable(b, t, err)
	}
}

func BenchmarkAblationUploadFirst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := suite().AblationUploadFirst()
		mustTable(b, t, err)
	}
}

func BenchmarkAblationBandwidthRule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := suite().AblationBandwidthRule()
		mustTable(b, t, err)
	}
}

func BenchmarkTCPModelValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mustTable(b, experiments.TCPModelValidation(), nil)
	}
}

func BenchmarkVendorGapSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mustTable(b, experiments.VendorGapSweep(), nil)
	}
}

func BenchmarkLoopbackVendorGap(b *testing.B) {
	srv, err := speedtest.NewServer("127.0.0.1:0", speedtest.ServerConfig{
		TotalRate:   400e6 / 8,
		PerConnRate: 100e6 / 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		single, err := speedtest.Download(ctx, srv.Addr(), speedtest.ClientSpec{
			Connections: 1, Duration: time.Second,
		})
		if err != nil {
			cancel()
			b.Fatal(err)
		}
		multi, err := speedtest.Download(ctx, srv.Addr(), speedtest.ClientSpec{
			Connections: 4, Duration: time.Second, WarmupDiscard: 200 * time.Millisecond,
		})
		cancel()
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(multi.Throughput) / float64(single.Throughput)
	}
	b.ReportMetric(ratio, "multi_over_single")
}

func BenchmarkRecommendationBBR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mustTable(b, experiments.RecommendationBBR(), nil)
	}
}

func BenchmarkChallengeScreen(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		t, err := suite().ChallengeTable("A")
		mustTable(b, t, err)
		rep, err := suite().ChallengeReport("A")
		if err != nil {
			b.Fatal(err)
		}
		rate = rep.EvidenceRate()
	}
	b.ReportMetric(100*rate, "evidence_rate_%")
}

func BenchmarkVendorSignificance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := suite().VendorSignificance()
		mustTable(b, t, err)
	}
}

func BenchmarkAggregationLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := suite().AggregationLoss()
		mustTable(b, t, err)
	}
}

func BenchmarkBottleneckCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := suite().BottleneckCensus("A", 5000)
		mustTable(b, t, err)
	}
}

func BenchmarkJointDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hm, err := suite().JointDensity("A")
		if err != nil {
			b.Fatal(err)
		}
		if err := hm.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRobustnessSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mustTable(b, experiments.RobustnessSweep(2021, 0, core.Config{}), nil)
	}
}
