package speedctx

import (
	"speedctx/internal/challenge"
	"speedctx/internal/geo"
	"speedctx/internal/mbaraw"
	"speedctx/internal/opendata"
	"speedctx/internal/stats"
)

// Extended public surface: the challenge-evidence screen (§8
// recommendations), the Ookla open-data tile format, the FCC MBA raw-file
// format, and two-sample inference for distribution comparisons.

// ChallengePolicy is the evidence-admission rule set for the FCC challenge
// process.
type ChallengePolicy = challenge.Policy

// ChallengeVerdict classifies one measurement for the challenge process.
type ChallengeVerdict = challenge.Verdict

// ChallengeReport aggregates verdicts over a dataset.
type ChallengeReport = challenge.Report

// Challenge verdicts.
const (
	VerdictMeetsPlan           = challenge.MeetsPlan
	VerdictEvidence            = challenge.Evidence
	VerdictLocalBottleneck     = challenge.LocalBottleneck
	VerdictInsufficientContext = challenge.InsufficientContext
	VerdictUnassigned          = challenge.Unassigned
)

// DefaultChallengePolicy returns the paper-aligned rule set.
func DefaultChallengePolicy() ChallengePolicy { return challenge.DefaultPolicy() }

// ScreenChallenge classifies every record of a BST-contextualized dataset
// for the FCC challenge process.
func ScreenChallenge(recs []OoklaRecord, res *BSTResult, cat *Catalog, p ChallengePolicy) (*ChallengeReport, error) {
	return challenge.BuildReport(recs, res, cat, p)
}

// Tile is one row of the Ookla open-data aggregate schema.
type Tile = opendata.Tile

// LatLon is a geographic coordinate.
type LatLon = geo.LatLon

// AggregateTiles folds per-test records into zoom-16 quadkey tiles (the
// public Ookla open-data schema).
func AggregateTiles(recs []OoklaRecord, center LatLon, seed int64) []Tile {
	return opendata.Aggregate(recs, center, seed)
}

// MBAThroughputRow is one row of the FCC MBA raw release
// (curr_httpgetmt.csv / curr_httppostmt.csv).
type MBAThroughputRow = mbaraw.ThroughputRow

// MBAUnitProfile is the subscription ground truth from the MBA unit
// profile.
type MBAUnitProfile = mbaraw.UnitProfile

// MergeMBARaw joins raw MBA download rows, upload rows and unit profiles
// into the MBARecord form FitBST consumes — the path for running the
// paper's Table 2 evaluation on a real MBA release.
var MergeMBARaw = mbaraw.Merge

// MannWhitney runs the two-sided Mann-Whitney U test — used to back
// distribution comparisons (e.g. the vendor gap) with significance.
var MannWhitney = stats.MannWhitney

// KolmogorovSmirnov runs the two-sample KS test.
var KolmogorovSmirnov = stats.KolmogorovSmirnov
